"""Process-parallel execution layer for DATAGEN (DESIGN.md §4f).

The paper's generator runs as MapReduce jobs over a Hadoop cluster; this
module is the in-process equivalent: a :class:`DatagenExecutor` wrapping a
``ProcessPoolExecutor`` that the pipeline hands to each parallelizable
stage.  Design constraints:

* **ship the context once per pool, not once per task** — workers receive
  only the (small, picklable) :class:`~repro.datagen.config.DatagenConfig`
  through the pool initializer and rebuild dictionaries, universe and
  event calendar from it.  Persons are pure functions of
  ``(config, serial)``, so workers regenerate any person they need on
  demand and cache it for the rest of the pool's life;
* **spawn-safe** — task functions and the initializer are module-level,
  and nothing relies on inherited process state, so the default ``spawn``
  start method works everywhere ``fork`` does;
* **deterministic** — the executor only runs tasks and returns their
  results *in submission order*; all partitioning and merging policy
  lives with the stages (see :mod:`repro.datagen.friendships` and the
  pipeline), which are responsible for byte-identical output;
* **observable** — workers buffer wall-clock spans alongside their
  results and :meth:`DatagenExecutor.run_tasks` stitches them into the
  parent trace on the worker's own pid track, so ``--trace`` yields one
  coherent Chrome trace across processes;
* **graceful degradation** — when the platform cannot start a pool (or a
  probe task never completes), :meth:`DatagenExecutor.create` logs a
  warning, bumps ``datagen.parallel.fallback_serial`` and returns None,
  and the pipeline takes the in-process path.
"""

from __future__ import annotations

import logging
import multiprocessing
import os
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError

from .. import telemetry
from ..errors import DatagenError
from ..ids import serial_of
from .config import DatagenConfig

_logger = logging.getLogger(__name__)

#: Name of the counter bumped when pool creation fails and the pipeline
#: silently (well, loudly) degrades to the serial path.
FALLBACK_COUNTER = "datagen.parallel.fallback_serial"


class WorkerContext:
    """Per-process datagen state, rebuilt once from the config.

    Everything here is a deterministic function of the configuration, so
    a worker's view of the world is identical to the parent's without
    shipping any of it through the task queue.
    """

    def __init__(self, config: DatagenConfig) -> None:
        from .dictionaries import Dictionaries
        from .universe import build_universe

        self.config = config
        self.dictionaries = Dictionaries(config.seed)
        self.universe = build_universe(self.dictionaries)
        self._calendar = None
        self._persons: dict[int, object] = {}

    @property
    def calendar(self):
        """The event calendar, built on first use (activity tasks only)."""
        if self._calendar is None:
            from .events import EventCalendar
            self._calendar = EventCalendar.generate(self.config,
                                                    self.universe)
        return self._calendar

    def person(self, serial: int):
        """The person with this serial, regenerated and cached on miss."""
        person = self._persons.get(serial)
        if person is None:
            from .persons import generate_person
            person = generate_person(serial, self.config, self.dictionaries,
                                     self.universe)
            self._persons[serial] = person
        return person

    def person_by_id(self, person_id: int):
        return self.person(serial_of(person_id))

    def add_persons(self, persons) -> None:
        """Pre-seed the cache with persons the parent already shipped."""
        for person in persons:
            self._persons[serial_of(person.id)] = person


# ----------------------------------------------------------------------
# worker side: initializer, span buffer, stage task dispatch
# ----------------------------------------------------------------------

_context: WorkerContext | None = None
_record_spans: bool = False
#: Wall-clock spans not yet shipped back: (name, start, end, attributes).
_pending_spans: list[tuple[str, float, float, dict]] = []


def _init_worker(config: DatagenConfig, record_spans: bool) -> None:
    """Pool initializer: build the per-process context once."""
    global _context, _record_spans
    wall_start = time.time()
    _context = WorkerContext(config)
    _record_spans = record_spans
    if record_spans:
        _pending_spans.append(("datagen.worker.init", wall_start,
                               time.time(), {}))


def _probe() -> int:
    """Verifies a worker came up with a usable context."""
    if _context is None:  # pragma: no cover - defensive
        raise DatagenError("datagen worker context missing")
    return os.getpid()


def _task_persons(context: WorkerContext, payload) -> list:
    start, end = payload
    return [context.person(serial) for serial in range(start, end)]


def _task_friendship_block(context: WorkerContext, payload):
    from .friendships import speculate_block
    return speculate_block(context.config, payload)


def _task_activity(context: WorkerContext, payload):
    from .activity import ActivityGenerator
    context.add_persons(payload["owners"])
    generator = ActivityGenerator(context.config, context.dictionaries,
                                  context.universe, context.calendar,
                                  person_resolver=context.person_by_id)
    return generator.generate_range(payload["owners"], payload["adjacency"])


_TASKS = {
    "persons": _task_persons,
    "friendship_block": _task_friendship_block,
    "activity": _task_activity,
}


def _execute(stage: str, span_name: str, payload):
    """Run one stage task; returns (result, pid, buffered spans)."""
    global _pending_spans
    if _context is None:  # pragma: no cover - defensive
        raise DatagenError("datagen worker context missing")
    wall_start = time.time()
    result = _TASKS[stage](_context, payload)
    spans: list[tuple[str, float, float, dict]] = []
    if _record_spans:
        spans, _pending_spans = _pending_spans, []
        spans.append((span_name, wall_start, time.time(), {"stage": stage}))
    return result, os.getpid(), spans


# ----------------------------------------------------------------------
# parent side
# ----------------------------------------------------------------------

class DatagenExecutor:
    """Stage-task runner over a process pool (None when serial)."""

    def __init__(self, config: DatagenConfig,
                 pool: ProcessPoolExecutor) -> None:
        self.config = config
        self.jobs = config.parallel.jobs
        self._pool = pool

    @classmethod
    def create(cls, config: DatagenConfig) -> "DatagenExecutor | None":
        """Build the pool, or None for ``jobs=1`` / unusable platforms.

        A probe task round-trips through a worker before any stage runs:
        platforms where the start method constructs a pool that can never
        execute anything fail here, inside the timeout, instead of
        deadlocking mid-stage.
        """
        parallel = config.parallel
        if parallel.jobs <= 1:
            return None
        pool = None
        try:
            mp_context = multiprocessing.get_context(parallel.start_method)
            pool = ProcessPoolExecutor(
                max_workers=parallel.jobs,
                mp_context=mp_context,
                initializer=_init_worker,
                initargs=(config, telemetry.active),
            )
            pool.submit(_probe).result(timeout=parallel.task_timeout)
        except Exception as exc:
            if pool is not None:
                pool.shutdown(wait=False, cancel_futures=True)
            if not parallel.fallback_serial:
                raise DatagenError(
                    f"cannot start datagen worker pool "
                    f"({parallel.start_method}, jobs={parallel.jobs}): "
                    f"{exc}") from exc
            _logger.warning(
                "datagen worker pool unavailable (%s: %s); "
                "falling back to serial generation", type(exc).__name__, exc)
            telemetry.counter(FALLBACK_COUNTER).inc()
            return None
        return cls(config, pool)

    def partition(self, n: int) -> list[tuple[int, int]]:
        """Split ``n`` items into contiguous ``(start, end)`` ranges.

        Aims for ``jobs * tasks_per_worker`` tasks (over-decomposition
        smooths skewed task costs) but never ships fewer than
        ``min_chunk`` items per task.
        """
        if n <= 0:
            return []
        parallel = self.config.parallel
        tasks = min(parallel.jobs * parallel.tasks_per_worker,
                    max(1, n // parallel.min_chunk))
        chunk = -(-n // tasks)
        return [(start, min(start + chunk, n))
                for start in range(0, n, chunk)]

    def run_tasks(self, stage: str, payloads: list,
                  span_name: str | None = None) -> list:
        """Run one payload per task; results come back in payload order.

        Worker span buffers ride along with each result and are stitched
        into the parent trace on a per-pid track (wall-clock timestamps
        are shifted onto the tracer's ``perf_counter`` timeline).
        """
        name = span_name or f"datagen.{stage}"
        futures = [self._pool.submit(_execute, stage, name, payload)
                   for payload in payloads]
        timeout = self.config.parallel.task_timeout
        clock_offset = time.perf_counter() - time.time()
        results = []
        for index, future in enumerate(futures):
            try:
                result, pid, spans = future.result(timeout=timeout)
            except FutureTimeoutError:
                self._terminate()
                raise DatagenError(
                    f"datagen {stage} task {index}/{len(futures)} did not "
                    f"finish within {timeout:.0f}s; worker pool "
                    f"terminated") from None
            if telemetry.active:
                for span_label, wall_start, wall_end, attrs in spans:
                    telemetry.add_span(
                        span_label, wall_start + clock_offset,
                        wall_end + clock_offset, thread_id=pid,
                        thread_name=f"datagen-worker-{pid}", **attrs)
            results.append(result)
        return results

    def _terminate(self) -> None:
        """Hard-stop the pool after a hang (kill workers, drop queue)."""
        processes = getattr(self._pool, "_processes", None) or {}
        for process in list(processes.values()):
            try:
                process.kill()
            except Exception:  # pragma: no cover - best effort
                pass
        self._pool.shutdown(wait=False, cancel_futures=True)

    def close(self) -> None:
        self._pool.shutdown(wait=True, cancel_futures=True)
