"""Static dimension entities: places, organisations, tag classes, tags.

The paper notes that "Organization and Place information are more
dimension-like and do not scale with the amount of persons or time".  This
module materializes those dimension entities from the built-in dictionaries
once per generation run and provides the lookup structures person/activity
generation needs (country → cities/universities/companies, tag ranking per
country, per-tag vocabulary).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..ids import EntityKind, IdAllocator, serial_of
from ..schema.entities import (
    Organisation,
    OrganisationType,
    Place,
    PlaceType,
    Tag,
    TagClass,
)
from .dictionaries import COUNTRIES, TAG_CLASSES, CountrySpec, Dictionaries
from .zorder import zorder8


@dataclass
class CountryUniverse:
    """Resolved ids of everything belonging to one country."""

    spec: CountrySpec
    country_place_id: int
    city_ids: tuple[int, ...]
    university_ids: tuple[int, ...]
    company_ids: tuple[int, ...]
    #: Tag ids ranked by popularity as seen from this country.
    ranked_tag_ids: tuple[int, ...] = ()


@dataclass
class Universe:
    """All dimension entities plus resolution maps used by the generator."""

    places: list[Place] = field(default_factory=list)
    organisations: list[Organisation] = field(default_factory=list)
    tag_classes: list[TagClass] = field(default_factory=list)
    tags: list[Tag] = field(default_factory=list)
    countries: list[CountryUniverse] = field(default_factory=list)
    #: city place id → country universe index.
    country_of_city: dict[int, int] = field(default_factory=dict)
    #: tag id → tag name (for text generation).
    tag_name_by_id: dict[int, str] = field(default_factory=dict)
    #: tag name → tag id.
    tag_id_by_name: dict[str, int] = field(default_factory=dict)
    #: city place id → z-order code (study-location composite keys).
    city_zorder: dict[int, int] = field(default_factory=dict)
    #: city place id → (latitude, longitude).
    city_coords: dict[int, tuple[float, float]] = field(
        default_factory=dict)
    #: organisation id → organisation.
    organisation_by_id: dict[int, Organisation] = field(default_factory=dict)

    def country_universe(self, index: int) -> CountryUniverse:
        return self.countries[index]


def build_universe(dictionaries: Dictionaries) -> Universe:
    """Materialize all dimension entities with stable ids.

    Id assignment order is fixed (continents, then countries/cities in
    ``COUNTRIES`` order; tag classes/tags in ``TAG_CLASSES`` order), so the
    universe is identical for every run with the same dictionaries seed.
    """
    universe = Universe()
    place_ids = IdAllocator(EntityKind.PLACE)
    org_ids = IdAllocator(EntityKind.ORGANISATION)
    tagclass_ids = IdAllocator(EntityKind.TAG_CLASS)
    tag_ids = IdAllocator(EntityKind.TAG)

    continent_id_by_name: dict[str, int] = {}
    for continent in sorted({c.continent for c in COUNTRIES}):
        place = Place(place_ids.allocate(), continent, PlaceType.CONTINENT)
        continent_id_by_name[continent] = place.id
        universe.places.append(place)

    for country_index, spec in enumerate(COUNTRIES):
        country_place = Place(place_ids.allocate(), spec.name,
                              PlaceType.COUNTRY,
                              part_of=continent_id_by_name[spec.continent])
        universe.places.append(country_place)
        city_ids: list[int] = []
        for city_name, lat, lon in spec.cities:
            z = zorder8(lat, lon)
            city = Place(place_ids.allocate(), city_name, PlaceType.CITY,
                         part_of=country_place.id, z_order=z)
            universe.places.append(city)
            universe.city_zorder[city.id] = z
            universe.city_coords[city.id] = (lat, lon)
            city_ids.append(city.id)
            universe.country_of_city[city.id] = country_index
        university_ids: list[int] = []
        for uni_name in spec.universities:
            # Universities are located in a city of their country; spread
            # them round-robin over the cities.
            city_id = city_ids[len(university_ids) % len(city_ids)]
            org = Organisation(org_ids.allocate(), uni_name,
                               OrganisationType.UNIVERSITY, city_id)
            universe.organisations.append(org)
            university_ids.append(org.id)
        company_ids: list[int] = []
        for company_name in spec.companies:
            org = Organisation(org_ids.allocate(), company_name,
                               OrganisationType.COMPANY, country_place.id)
            universe.organisations.append(org)
            company_ids.append(org.id)
        universe.countries.append(CountryUniverse(
            spec=spec,
            country_place_id=country_place.id,
            city_ids=tuple(city_ids),
            university_ids=tuple(university_ids),
            company_ids=tuple(company_ids),
        ))

    class_id_by_name: dict[str, int] = {}
    for class_spec in TAG_CLASSES:
        parent_id = (class_id_by_name[class_spec.parent]
                     if class_spec.parent is not None else None)
        tag_class = TagClass(tagclass_ids.allocate(), class_spec.name,
                             parent_id)
        class_id_by_name[class_spec.name] = tag_class.id
        universe.tag_classes.append(tag_class)
        for tag_name in class_spec.tags:
            tag = Tag(tag_ids.allocate(), tag_name, tag_class.id)
            universe.tags.append(tag)
            universe.tag_name_by_id[tag.id] = tag_name
            universe.tag_id_by_name[tag_name] = tag.id

    universe.organisation_by_id = {o.id: o for o in universe.organisations}

    # Resolve per-country tag rankings now that tag ids exist.
    for country in universe.countries:
        ranked_names = dictionaries.tags_ranked_for_country(country.spec.name)
        country.ranked_tag_ids = tuple(
            universe.tag_id_by_name[name] for name in ranked_names)
    return universe


def university_serial(university_id: int) -> int:
    """Serial of a university id, for the 12-bit composite-key slot."""
    return serial_of(university_id)
