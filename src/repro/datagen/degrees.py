"""Friendship degree model (paper §2.3, Figures 2b and 3a).

DATAGEN "discretizes the power law distribution given by [the] Facebook
graph, but scales this according to the size of the network":

1. a target average degree ``avg = n^(0.512 - 0.028·log10 n)``;
2. each person is assigned a percentile of the Facebook degree
   distribution, then a target degree uniform between that percentile's
   min and max;
3. the target is scaled by ``avg / facebook_average``.

We do not have the raw Facebook percentile table (Ugander et al., 2011), so
we synthesize one from a truncated lognormal calibrated to the published
summary statistics: median ≈ 100 (``μ = ln 100``), mean ≈ 190
(``σ² = 2·ln(190/100)``), hard cap 5000 (Facebook's friend limit).
Fig. 2b regenerates from this table.
"""

from __future__ import annotations

import math

from ..rng import RandomStream

#: Facebook's friend cap (upper truncation of the degree distribution).
FACEBOOK_MAX_DEGREE = 5000
#: Lognormal parameters fitted to the published median/mean.
_LOGNORMAL_MU = math.log(100.0)
_LOGNORMAL_SIGMA = math.sqrt(2.0 * math.log(190.0 / 100.0))


def _normal_quantile(q: float) -> float:
    """Inverse standard-normal CDF (Acklam's rational approximation)."""
    if not 0.0 < q < 1.0:
        raise ValueError(f"quantile must be in (0,1), got {q}")
    a = (-3.969683028665376e+01, 2.209460984245205e+02,
         -2.759285104469687e+02, 1.383577518672690e+02,
         -3.066479806614716e+01, 2.506628277459239e+00)
    b = (-5.447609879822406e+01, 1.615858368580409e+02,
         -1.556989798598866e+02, 6.680131188771972e+01,
         -1.328068155288572e+01)
    c = (-7.784894002430293e-03, -3.223964580411365e-01,
         -2.400758277161838e+00, -2.549732539343734e+00,
         4.374664141464968e+00, 2.938163982698783e+00)
    d = (7.784695709041462e-03, 3.224671290700398e-01,
         2.445134137142996e+00, 3.754408661907416e+00)
    p_low, p_high = 0.02425, 1 - 0.02425
    if q < p_low:
        t = math.sqrt(-2.0 * math.log(q))
        return (((((c[0] * t + c[1]) * t + c[2]) * t + c[3]) * t
                 + c[4]) * t + c[5]) / \
               ((((d[0] * t + d[1]) * t + d[2]) * t + d[3]) * t + 1.0)
    if q > p_high:
        t = math.sqrt(-2.0 * math.log(1.0 - q))
        return -(((((c[0] * t + c[1]) * t + c[2]) * t + c[3]) * t
                  + c[4]) * t + c[5]) / \
               ((((d[0] * t + d[1]) * t + d[2]) * t + d[3]) * t + 1.0)
    t = q - 0.5
    r = t * t
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r
             + a[4]) * r + a[5]) * t / \
           (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r
             + b[4]) * r + 1.0)


def _truncated_pareto_quantile(q: float) -> float:
    """Inverse CDF of the calibrated degree distribution (capped).

    Kept under the historical name used by :func:`build_percentile_table`;
    the underlying family is a lognormal truncated at the friend cap.
    """
    q = min(max(q, 1e-6), 1.0 - 1e-6)
    value = math.exp(_LOGNORMAL_MU + _LOGNORMAL_SIGMA
                     * _normal_quantile(q))
    return min(value, float(FACEBOOK_MAX_DEGREE))


def build_percentile_table() -> list[tuple[int, int]]:
    """``(min_degree, max_degree)`` per percentile 0..99 (Fig. 2b data).

    Percentile ``p`` covers quantiles ``[p/100, (p+1)/100)`` of the
    truncated power law.
    """
    table: list[tuple[int, int]] = []
    for p in range(100):
        lo = _truncated_pareto_quantile(p / 100.0)
        hi = _truncated_pareto_quantile(min((p + 1) / 100.0, 0.9999))
        table.append((max(1, int(lo)), max(1, int(hi))))
    # Pin the top percentile to the cap, as in the real table.
    lo_last, _ = table[-1]
    table[-1] = (lo_last, FACEBOOK_MAX_DEGREE)
    return table


#: Module-level table; deterministic, built once.
PERCENTILE_TABLE: list[tuple[int, int]] = build_percentile_table()


def facebook_average_degree() -> float:
    """Mean of the discretized distribution (≈ 190 by calibration)."""
    total = sum((lo + hi) / 2.0 for lo, hi in PERCENTILE_TABLE)
    return total / len(PERCENTILE_TABLE)


def average_degree_for(num_persons: int) -> float:
    """Paper scaling law ``n^(0.512 - 0.028·log10 n)``."""
    return num_persons ** (0.512 - 0.028 * math.log10(num_persons))


def target_degree(person_serial: int, num_persons: int, seed: int) -> int:
    """Target friendship degree for one person.

    Deterministic per person: the percentile and the in-band uniform draw
    come from a stream keyed by the person's serial, so the assignment does
    not depend on generation order or worker count.
    """
    stream = RandomStream.for_key(seed, "degree", person_serial)
    percentile = stream.randint(0, 99)
    lo, hi = PERCENTILE_TABLE[percentile]
    raw = stream.randint(lo, hi)
    scale = average_degree_for(num_persons) / facebook_average_degree()
    scaled = max(1, round(raw * scale))
    # A person cannot have more friends than there are other members.
    return min(scaled, num_persons - 1)


def degree_histogram(degrees: list[int], bucket: int = 1,
                     ) -> dict[int, int]:
    """Histogram of degrees (Fig. 3a regeneration helper)."""
    histogram: dict[int, int] = {}
    for degree in degrees:
        key = (degree // bucket) * bucket
        histogram[key] = histogram.get(key, 0) + 1
    return dict(sorted(histogram.items()))
