"""Z-order (Morton) encoding of geographic coordinates.

The paper's study-location correlation dimension is a composite key: "the
Z-order location of the university's city (bits 31-24), the university ID
(bits 23-12), and the studied year (bits 11-0)".  This module provides the
8-bit Z-order of a (latitude, longitude) pair and the composite-key builder.
"""

from __future__ import annotations


def _quantize(value: float, low: float, high: float, bits: int) -> int:
    """Map ``value`` in ``[low, high]`` onto ``[0, 2^bits - 1]``."""
    span = high - low
    clamped = min(max(value, low), high)
    scaled = int((clamped - low) / span * ((1 << bits) - 1) + 0.5)
    return scaled


def interleave_bits(x: int, y: int, bits: int) -> int:
    """Interleave the low ``bits`` of x and y (x in even positions)."""
    z = 0
    for i in range(bits):
        z |= ((x >> i) & 1) << (2 * i)
        z |= ((y >> i) & 1) << (2 * i + 1)
    return z


def zorder8(latitude: float, longitude: float) -> int:
    """8-bit Morton code of a lat/lon pair (4 bits per axis)."""
    qlat = _quantize(latitude, -90.0, 90.0, 4)
    qlon = _quantize(longitude, -180.0, 180.0, 4)
    return interleave_bits(qlat, qlon, 4)


def study_location_key(city_z: int, university_serial: int,
                       class_year: int) -> int:
    """Composite sort key for the first friendship correlation dimension.

    Bits 31-24: city Z-order; bits 23-12: university id; bits 11-0: studied
    year — exactly the layout described in the paper (§2.3).
    """
    z = city_z & 0xFF
    uni = university_serial & 0xFFF
    year = class_year & 0xFFF
    return (z << 24) | (uni << 12) | year
