"""Relational volcano-style engine — the second system under test.

The paper's evaluation runs SNB-Interactive on Virtuoso, a relational
store, with "queries in SQL with vendor-specific extensions for graph
algorithms" and *explicit plans*.  This package plays that role:

* :mod:`repro.engine.rows` — schemas, tables, hash/ordered/primary-key
  indexes;
* :mod:`repro.engine.catalog` — the SNB relational schema (person, knows,
  message, likes, forum, membership, ...), loaded from a generated
  network, plus table statistics;
* :mod:`repro.engine.operators` — volcano iterators: scans, index
  lookups, index-nested-loop and hash joins, sort/limit/aggregate, and a
  transitive-expansion operator (the "vendor extension" for graph
  traversals);
* :mod:`repro.engine.cardinality` — statistics-based cardinality
  estimates for friendship expansions (the paper's hardest choke point);
* :mod:`repro.engine.optimizer` — cost-based join-type selection,
  reproducing the Figure 4 discussion: INL join for the low-cardinality
  friend expansion, hash join for the voluminous message join, and a
  measurable ~50% penalty for choosing wrong;
* :mod:`repro.engine.explain` — plan rendering à la Figure 4;
* :mod:`repro.engine.snb_queries` — explicit physical plans for the 14
  complex reads, 7 short reads and 8 updates.
"""

from .catalog import Catalog, load_catalog
from .explain import explain
from .operators import (
    Filter,
    HashJoin,
    IndexNestedLoopJoin,
    Limit,
    Project,
    Scan,
    Sort,
    TransitiveExpand,
)
from .optimizer import JoinSpec, Optimizer, PlannedJoin
from .rows import Schema, Table

__all__ = [
    "Catalog",
    "Filter",
    "HashJoin",
    "IndexNestedLoopJoin",
    "JoinSpec",
    "Limit",
    "Optimizer",
    "PlannedJoin",
    "Project",
    "Scan",
    "Schema",
    "Sort",
    "Table",
    "TransitiveExpand",
    "explain",
    "load_catalog",
]
