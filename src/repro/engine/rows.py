"""Row storage for the relational engine: schemas, tables, indexes.

Tables are append-only lists of tuples (the update workload is
insert-only), with three index kinds:

* a **primary-key** dict (unique column → row),
* **hash indexes** (column → list of rows) for foreign keys,
* one **ordered index** per table (sorted ``(value, row)`` pairs) for
  range scans, e.g. ``message.creation_date``.

Each table keeps simple statistics (row count, per-column distinct counts
on indexed columns) which the cardinality estimator consumes.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Any, Iterable, Iterator

from ..errors import DuplicateError, EngineError, NotFoundError
from ..store.csr import CSRGraph


class Schema:
    """Ordered column names of a table or operator output."""

    __slots__ = ("columns", "_positions")

    def __init__(self, columns: Iterable[str]) -> None:
        self.columns = tuple(columns)
        self._positions = {name: i for i, name in enumerate(self.columns)}
        if len(self._positions) != len(self.columns):
            raise EngineError(f"duplicate column in schema {self.columns}")

    def position(self, column: str) -> int:
        try:
            return self._positions[column]
        except KeyError as exc:
            raise EngineError(
                f"no column {column!r} in {self.columns}") from exc

    def __contains__(self, column: str) -> bool:
        return column in self._positions

    def __len__(self) -> int:
        return len(self.columns)

    def concat(self, other: "Schema", prefix: str = "") -> "Schema":
        """Schema of a join output; ``prefix`` disambiguates collisions.

        Repeated self-joins keep prefixing (``inner_inner_x``) until the
        name is unique, so any pipeline depth stays well-formed.
        """
        merged = list(self.columns)
        taken = set(merged)
        effective = prefix or "rhs_"
        for column in other.columns:
            name = column
            while name in taken:
                name = f"{effective}{name}"
            taken.add(name)
            merged.append(name)
        return Schema(merged)


class Table:
    """One relational table with its indexes and statistics."""

    def __init__(self, name: str, schema: Schema,
                 primary_key: str | None = None) -> None:
        self.name = name
        self.schema = schema
        self.rows: list[tuple] = []
        self.primary_key = primary_key
        self._pk_index: dict[Any, tuple] = {}
        self._hash_indexes: dict[str, dict[Any, list[tuple]]] = {}
        self._ordered_column: str | None = None
        self._ordered_index: list[tuple[Any, tuple]] = []
        # Parallel key array so range scans bisect without copying.
        self._ordered_keys: list[Any] = []
        # Lazily packed CSR adjacency per (from, to) column pair; the
        # epoch is the row count at build time (tables are append-only,
        # so a changed count is the only possible invalidation).
        self._csr: dict[tuple[str, str], tuple[int, CSRGraph]] = {}

    # -- schema -------------------------------------------------------------

    def create_hash_index(self, column: str) -> None:
        self.schema.position(column)  # validates
        if column not in self._hash_indexes:
            index: dict[Any, list[tuple]] = {}
            position = self.schema.position(column)
            for row in self.rows:
                index.setdefault(row[position], []).append(row)
            self._hash_indexes[column] = index

    def create_ordered_index(self, column: str) -> None:
        if self._ordered_column is not None \
                and self._ordered_column != column:
            raise EngineError(
                f"{self.name} already has an ordered index on "
                f"{self._ordered_column}")
        position = self.schema.position(column)
        self._ordered_column = column
        self._ordered_index = sorted(
            (row[position], row) for row in self.rows)
        self._ordered_keys = [entry[0] for entry in self._ordered_index]

    # -- mutation -------------------------------------------------------------

    def insert(self, row: tuple) -> None:
        """Append a row, maintaining all indexes."""
        if len(row) != len(self.schema):
            raise EngineError(
                f"row arity {len(row)} != schema arity "
                f"{len(self.schema)} for {self.name}")
        if self.primary_key is not None:
            key = row[self.schema.position(self.primary_key)]
            if key in self._pk_index:
                raise DuplicateError(
                    f"{self.name}.{self.primary_key}={key} exists")
            self._pk_index[key] = row
        self.rows.append(row)
        for column, index in self._hash_indexes.items():
            value = row[self.schema.position(column)]
            index.setdefault(value, []).append(row)
        if self._ordered_column is not None:
            value = row[self.schema.position(self._ordered_column)]
            position = bisect_right(self._ordered_keys, value)
            self._ordered_keys.insert(position, value)
            self._ordered_index.insert(position, (value, row))

    def bulk_load(self, rows: Iterable[tuple]) -> None:
        """Insert many rows (index maintenance amortized)."""
        for row in rows:
            self.insert(row)

    # -- access ---------------------------------------------------------------

    def by_pk(self, key: Any) -> tuple:
        try:
            return self._pk_index[key]
        except KeyError as exc:
            raise NotFoundError(
                f"{self.name}.{self.primary_key}={key} missing") from exc

    def get_pk(self, key: Any) -> tuple | None:
        return self._pk_index.get(key)

    def probe(self, column: str, value: Any) -> list[tuple]:
        """Hash-index lookup (empty list if no match)."""
        index = self._hash_indexes.get(column)
        if index is None:
            raise EngineError(f"no hash index on {self.name}.{column}")
        return index.get(value, [])

    def has_hash_index(self, column: str) -> bool:
        return column in self._hash_indexes

    def range_scan(self, low: Any = None, high: Any = None,
                   reverse: bool = False) -> Iterator[tuple]:
        """Rows with ordered-index value in ``[low, high]``."""
        if self._ordered_column is None:
            raise EngineError(f"no ordered index on {self.name}")
        keys = self._ordered_keys
        start = 0 if low is None else bisect_left(keys, low)
        stop = len(keys) if high is None else bisect_right(keys, high)
        indices = range(start, stop)
        if reverse:
            indices = reversed(indices)
        for i in indices:
            yield self._ordered_index[i][1]

    def csr(self, from_column: str, to_column: str) -> CSRGraph:
        """Packed adjacency over ``(from_column, to_column)`` edges.

        Built lazily and cached per row-count epoch; the hash-index
        postings (when present) provide the same per-source neighbor
        order as a row scan, so both builds produce identical graphs.
        """
        key = (from_column, to_column)
        entry = self._csr.get(key)
        epoch = len(self.rows)
        if entry is not None and entry[0] == epoch:
            return entry[1]
        from_position = self.schema.position(from_column)
        to_position = self.schema.position(to_column)
        index = self._hash_indexes.get(from_column)
        if index is not None:
            graph = CSRGraph.from_adjacency(
                {source: [row[to_position] for row in rows]
                 for source, rows in index.items()})
        else:
            graph = CSRGraph.from_edges(
                (row[from_position], row[to_position])
                for row in self.rows)
        self._csr[key] = (epoch, graph)
        return graph

    # -- statistics -------------------------------------------------------------

    @property
    def row_count(self) -> int:
        return len(self.rows)

    def distinct_count(self, column: str) -> int:
        """Distinct values on an indexed column (cheap via the index)."""
        index = self._hash_indexes.get(column)
        if index is not None:
            return len(index)
        if column == self.primary_key:
            return len(self._pk_index)
        position = self.schema.position(column)
        return len({row[position] for row in self.rows})

    def average_fanout(self, column: str) -> float:
        """Mean rows per distinct value of an indexed column."""
        distinct = self.distinct_count(column)
        if distinct == 0:
            return 0.0
        return self.row_count / distinct
