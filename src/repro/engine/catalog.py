"""The SNB relational schema and catalog (the "Virtuoso" table layout).

Messages (posts and comments) share one ``message`` table, as a columnar
RDBMS would store them; graph relations become foreign-key tables with
hash indexes ("indices are created on foreign key columns where needed,
otherwise all is in primary key order").  The ordered index on
``message.creation_date`` reflects the paper's observation that systems
can assign message ids increasing in time to give date selections high
locality.
"""

from __future__ import annotations

import threading

from ..errors import EngineError
from ..schema.dataset import SocialNetwork
from ..schema.entities import Comment, Forum, ForumMembership, Knows, \
    Like, Person, Post
from .rows import Schema, Table

PERSON = Schema(("id", "first_name", "last_name", "gender", "birthday",
                 "creation_date", "city_id", "country_id",
                 "browser_used", "location_ip"))
KNOWS = Schema(("person1_id", "person2_id", "creation_date"))
# The multi-valued person attributes, normalized the way a relational
# schema stores them; ``seq`` preserves the original value order so the
# denormalized tuples rebuild exactly (Q1's emails/languages columns).
PERSON_EMAIL = Schema(("person_id", "seq", "email"))
PERSON_LANGUAGE = Schema(("person_id", "seq", "language"))
PERSON_TAG = Schema(("person_id", "tag_id"))
STUDY_AT = Schema(("person_id", "organisation_id", "class_year"))
WORK_AT = Schema(("person_id", "organisation_id", "work_from"))
ORGANISATION = Schema(("id", "name", "type", "location_id"))
PLACE = Schema(("id", "name", "type", "part_of"))
TAG = Schema(("id", "name", "class_id"))
TAG_CLASS = Schema(("id", "name", "parent_id"))
FORUM = Schema(("id", "title", "creation_date", "moderator_id"))
FORUM_TAG = Schema(("forum_id", "tag_id"))
MEMBERSHIP = Schema(("forum_id", "person_id", "joined_date"))
MESSAGE = Schema(("id", "creator_id", "forum_id", "creation_date",
                  "content", "length", "language", "country_id",
                  "is_post", "root_post_id", "reply_of_id"))
MESSAGE_TAG = Schema(("message_id", "tag_id"))
LIKES = Schema(("person_id", "message_id", "creation_date", "is_post"))


class Catalog:
    """All tables of the relational SUT plus a coarse write lock.

    The write lock serializes update transactions — trivially
    serializable, satisfying the benchmark's ACID requirement for this
    insert-only workload (reads scan append-only structures).
    """

    def __init__(self) -> None:
        self.tables: dict[str, Table] = {}
        self.write_lock = threading.Lock()
        #: Statistics epoch: bumped only by :meth:`refresh_stats`, never
        #: by inserts — the optimizer's table-count estimates drift until
        #: an explicit refresh, exactly like a real system's ANALYZE.
        self._version = 1
        #: Optional :class:`repro.cache.PlanCache` consulted by the
        #: optimizer, keyed by ``(query id, catalog version)``.
        self.plan_cache = None
        self._create_tables()

    @property
    def version(self) -> int:
        """The current statistics epoch (plan-cache key component)."""
        return self._version

    def refresh_stats(self) -> int:
        """Declare statistics refreshed: bump the epoch so the next
        optimization of each query shape re-plans against current table
        sizes (cached plans under older epochs stop being served)."""
        self._version += 1
        return self._version

    def _create_tables(self) -> None:
        def add(name: str, schema: Schema, pk: str | None = None) -> Table:
            table = Table(name, schema, primary_key=pk)
            self.tables[name] = table
            return table

        add("person", PERSON, pk="id").create_hash_index("first_name")
        add("person_email", PERSON_EMAIL).create_hash_index("person_id")
        add("person_language",
            PERSON_LANGUAGE).create_hash_index("person_id")
        knows = add("knows", KNOWS)
        knows.create_hash_index("person1_id")
        add("person_tag", PERSON_TAG).create_hash_index("person_id")
        study = add("study_at", STUDY_AT)
        study.create_hash_index("person_id")
        work = add("work_at", WORK_AT)
        work.create_hash_index("person_id")
        work.create_hash_index("organisation_id")
        add("organisation", ORGANISATION, pk="id")
        add("place", PLACE, pk="id").create_hash_index("name")
        add("tag", TAG, pk="id").create_hash_index("name")
        add("tagclass", TAG_CLASS, pk="id")
        add("forum", FORUM, pk="id")
        add("forum_tag", FORUM_TAG).create_hash_index("forum_id")
        membership = add("membership", MEMBERSHIP)
        membership.create_hash_index("forum_id")
        membership.create_hash_index("person_id")
        message = add("message", MESSAGE, pk="id")
        message.create_hash_index("creator_id")
        message.create_hash_index("forum_id")
        message.create_hash_index("reply_of_id")
        message.create_hash_index("root_post_id")
        message.create_ordered_index("creation_date")
        message_tag = add("message_tag", MESSAGE_TAG)
        message_tag.create_hash_index("message_id")
        message_tag.create_hash_index("tag_id")
        likes = add("likes", LIKES)
        likes.create_hash_index("person_id")
        likes.create_hash_index("message_id")

    def table(self, name: str) -> Table:
        try:
            return self.tables[name]
        except KeyError as exc:
            raise EngineError(f"no table {name!r}") from exc

    # -- row converters (shared by bulk load and updates) -----------------

    @staticmethod
    def person_row(person: Person) -> tuple:
        return (person.id, person.first_name, person.last_name,
                person.gender, person.birthday, person.creation_date,
                person.city_id, person.country_id, person.browser_used,
                person.location_ip)

    @staticmethod
    def post_row(post: Post) -> tuple:
        # Photos carry their image file as the displayable content, the
        # same fallback the graph-store queries apply at read time.
        content = post.content or (post.image_file or "")
        return (post.id, post.author_id, post.forum_id,
                post.creation_date, content, post.length,
                post.language, post.country_id, True, post.id, 0)

    @staticmethod
    def comment_row(comment: Comment) -> tuple:
        return (comment.id, comment.author_id, 0, comment.creation_date,
                comment.content, comment.length, "", comment.country_id,
                False, comment.root_post_id, comment.reply_of_id)

    # -- transactional inserts (Table 9's engine row) ----------------------

    def insert_person(self, person: Person) -> None:
        with self.write_lock:
            self.table("person").insert(self.person_row(person))
            for seq, email in enumerate(person.emails):
                self.table("person_email").insert(
                    (person.id, seq, email))
            for seq, language in enumerate(person.languages):
                self.table("person_language").insert(
                    (person.id, seq, language))
            for tag_id in person.interests:
                self.table("person_tag").insert((person.id, tag_id))
            for study in person.study_at:
                self.table("study_at").insert(
                    (person.id, study.organisation_id, study.class_year))
            for work in person.work_at:
                self.table("work_at").insert(
                    (person.id, work.organisation_id, work.work_from))

    def insert_friendship(self, edge: Knows) -> None:
        with self.write_lock:
            table = self.table("knows")
            table.insert((edge.person1_id, edge.person2_id,
                          edge.creation_date))
            table.insert((edge.person2_id, edge.person1_id,
                          edge.creation_date))

    def insert_forum(self, forum: Forum) -> None:
        with self.write_lock:
            self.table("forum").insert((forum.id, forum.title,
                                        forum.creation_date,
                                        forum.moderator_id))
            for tag_id in forum.tag_ids:
                self.table("forum_tag").insert((forum.id, tag_id))

    def insert_membership(self, membership: ForumMembership) -> None:
        with self.write_lock:
            self.table("membership").insert(
                (membership.forum_id, membership.person_id,
                 membership.joined_date))

    def insert_post(self, post: Post) -> None:
        with self.write_lock:
            self.table("message").insert(self.post_row(post))
            for tag_id in post.tag_ids:
                self.table("message_tag").insert((post.id, tag_id))

    def insert_comment(self, comment: Comment) -> None:
        with self.write_lock:
            self.table("message").insert(self.comment_row(comment))
            for tag_id in comment.tag_ids:
                self.table("message_tag").insert((comment.id, tag_id))

    def insert_like(self, like: Like) -> None:
        with self.write_lock:
            self.table("likes").insert(
                (like.person_id, like.message_id, like.creation_date,
                 like.is_post))


def load_catalog(network: SocialNetwork) -> Catalog:
    """Bulk-load a generated network into a fresh catalog."""
    catalog = Catalog()
    catalog.table("person").bulk_load(
        Catalog.person_row(p) for p in network.persons)
    catalog.table("person_email").bulk_load(
        (p.id, seq, email) for p in network.persons
        for seq, email in enumerate(p.emails))
    catalog.table("person_language").bulk_load(
        (p.id, seq, language) for p in network.persons
        for seq, language in enumerate(p.languages))
    catalog.table("person_tag").bulk_load(
        (p.id, tag_id) for p in network.persons for tag_id in p.interests)
    catalog.table("study_at").bulk_load(
        (p.id, s.organisation_id, s.class_year)
        for p in network.persons for s in p.study_at)
    catalog.table("work_at").bulk_load(
        (p.id, w.organisation_id, w.work_from)
        for p in network.persons for w in p.work_at)
    catalog.table("knows").bulk_load(
        row for edge in network.knows
        for row in ((edge.person1_id, edge.person2_id,
                     edge.creation_date),
                    (edge.person2_id, edge.person1_id,
                     edge.creation_date)))
    catalog.table("organisation").bulk_load(
        (o.id, o.name, o.type.value, o.location_id)
        for o in network.organisations)
    catalog.table("place").bulk_load(
        (p.id, p.name, p.type.value, p.part_of) for p in network.places)
    catalog.table("tag").bulk_load(
        (t.id, t.name, t.class_id) for t in network.tags)
    catalog.table("tagclass").bulk_load(
        (tc.id, tc.name, tc.parent_id) for tc in network.tag_classes)
    catalog.table("forum").bulk_load(
        (f.id, f.title, f.creation_date, f.moderator_id)
        for f in network.forums)
    catalog.table("forum_tag").bulk_load(
        (f.id, tag_id) for f in network.forums for tag_id in f.tag_ids)
    catalog.table("membership").bulk_load(
        (m.forum_id, m.person_id, m.joined_date)
        for m in network.memberships)
    # Messages must be loaded in creation-date order for the ordered
    # index's bulk path; posts/comments are already time-ordered, so a
    # single merge suffices.
    message_rows = sorted(
        [Catalog.post_row(p) for p in network.posts]
        + [Catalog.comment_row(c) for c in network.comments],
        key=lambda row: row[3])
    catalog.table("message").bulk_load(message_rows)
    catalog.table("message_tag").bulk_load(
        (m.id, tag_id) for m in network.messages()
        for tag_id in m.tag_ids)
    catalog.table("likes").bulk_load(
        (like.person_id, like.message_id, like.creation_date,
         like.is_post) for like in network.likes)
    return catalog
