"""Statistics-based cardinality estimation.

The paper singles out "estimating cardinality in graph traversals with
data skew and correlations" as a key choke point: graph traversals are
repeated joins, and the optimizer must "estimate the size of [the]
second-degree friendship circle in a dense social graph".

The estimator uses per-table statistics (row counts, distinct counts and
average fanout on indexed columns) plus a dedup damping factor for
repeated expansions of the same edge table — without damping, the 2-hop
estimate is ``degree²``, which badly overestimates dense circles where
friends-of-friends overlap.
"""

from __future__ import annotations

from dataclasses import dataclass

from .catalog import Catalog

#: Fraction of 2nd-hop expansions expected to be novel (overlap damping).
DEDUP_DAMPING = 0.8


@dataclass
class Estimate:
    """A cardinality estimate with the reasoning chain (for EXPLAIN)."""

    rows: float
    derivation: str


class CardinalityEstimator:
    """Estimates intermediate cardinalities along a join pipeline."""

    def __init__(self, catalog: Catalog) -> None:
        self.catalog = catalog

    def table_rows(self, table_name: str) -> int:
        return self.catalog.table(table_name).row_count

    def fanout(self, table_name: str, column: str | None) -> float:
        """Expected matches per probe key.

        ``column=None`` means a primary-key lookup: fanout ≤ 1, estimated
        as the probability a key is present (≈ 1 for FK-driven probes).
        """
        table = self.catalog.table(table_name)
        if column is None:
            return 1.0
        return table.average_fanout(column)

    def expand(self, input_rows: float, table_name: str,
               column: str | None, selectivity: float = 1.0,
               repeat_expansion: bool = False) -> Estimate:
        """Estimate output rows of joining ``input_rows`` with a table."""
        per_key = self.fanout(table_name, column)
        rows = input_rows * per_key * selectivity
        note = (f"{input_rows:.0f} × fanout({table_name}."
                f"{column or 'pk'})={per_key:.1f}")
        if selectivity != 1.0:
            note += f" × sel={selectivity:.2f}"
        if repeat_expansion:
            rows *= DEDUP_DAMPING
            note += f" × dedup={DEDUP_DAMPING}"
        return Estimate(rows, note)

    def average_degree(self) -> float:
        """Estimated friendship degree (knows stores both directions)."""
        return self.fanout("knows", "person1_id")

    def k_hop_circle(self, depth: int, table_name: str = "knows",
                     column: str = "person1_id") -> Estimate:
        """Estimated size of a ``depth``-hop circle from one person.

        Generalizes :meth:`two_hop_circle` for the expand-sourced plans
        (Q1's 3-hop, Q13's unbounded search).  The estimate is capped at
        the number of distinct source nodes — beyond the graph diameter
        every further hop adds nothing, which keeps Q13's "unbounded"
        depth finite.
        """
        cap = float(self.catalog.table(table_name).distinct_count(column))
        total = 0.0
        frontier = 1.0
        hops = 0
        for hop in range(depth):
            estimate = self.expand(frontier, table_name, column,
                                   repeat_expansion=hop > 0)
            frontier = estimate.rows
            total += frontier
            hops = hop + 1
            if total >= cap or frontier < 1.0:
                total = min(total, cap)
                break
        return Estimate(total,
                        f"{hops}-hop circle ≈ {total:.0f} "
                        f"(degree={self.average_degree():.1f}, "
                        f"dedup={DEDUP_DAMPING}, cap={cap:.0f})")

    def two_hop_circle(self) -> Estimate:
        """Estimated size of a 2-hop friendship circle from one person."""
        degree = self.average_degree()
        first = self.expand(1.0, "knows", "person1_id")
        second = self.expand(first.rows, "knows", "person1_id",
                             repeat_expansion=True)
        return Estimate(first.rows + second.rows,
                        f"{first.derivation}; then {second.derivation} "
                        f"(degree={degree:.1f})")

    def date_selectivity(self, table_name: str, column: str,
                         low: int | None, high: int | None) -> float:
        """Fraction of rows inside a date range (uniform assumption)."""
        table = self.catalog.table(table_name)
        if not table.rows:
            return 0.0
        position = table.schema.position(column)
        values = [table.rows[0][position], table.rows[-1][position]]
        lo_bound, hi_bound = min(values), max(values)
        span = max(hi_bound - lo_bound, 1)
        lo = lo_bound if low is None else max(low, lo_bound)
        hi = hi_bound if high is None else min(high, hi_bound)
        if hi <= lo:
            return 0.0
        return min((hi - lo) / span, 1.0)
