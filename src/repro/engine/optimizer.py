"""Cost-based join-type selection (the Figure 4 choke point).

"An important task for the query optimizer here is to detect the types of
joins, since they are highly sensitive to cardinalities of their inputs."

The optimizer plans *linear join pipelines*: a point source (index
lookup, or a transitive friendship expansion for the circle-shaped
queries) followed by a sequence of joins.  For every join it compares

* **index nested loop**: ``outer × (probe_cost + fanout)``, available
  when the inner table has a usable index on the join column;
* **hash join**: ``inner_rows × build_cost + outer × probe_cost +
  output`` — building on the *entire inner table* (possibly filtered),
  which wins once the outer side is large relative to the inner table.

``force`` overrides let the Figure 4 bench measure the penalty of the
wrong choice (the paper: "replacing index-nested loop with hash in ⨝1
results in 50% penalty" in HyPer).

Every planned operator is annotated with ``estimated_rows`` so EXPLAIN
can render estimates next to post-execution actuals.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Union

from ..errors import PlanError
from .cardinality import CardinalityEstimator
from .catalog import Catalog
from .operators import (
    Filter,
    HashJoin,
    IndexNestedLoopJoin,
    KeyLookup,
    Operator,
    Scan,
    TransitiveExpand,
)
from .predicates import Predicate

#: Cost units per index probe (hash/pk lookup).
PROBE_COST = 1.5
#: Cost units per row inserted into a hash-join build table.
BUILD_COST = 1.0
#: Cost units per produced output row.
OUTPUT_COST = 0.2

#: Residuals may be row callables (volcano-era) or declarative
#: predicates (column-aware, vectorizable).
Residual = Union[Callable[[tuple], bool], Predicate]


@dataclass
class JoinStep:
    """One join of the pipeline: probe ``inner_table`` by a key column."""

    inner_table: str
    #: Column of the accumulated (outer) schema providing probe keys.
    outer_key: str
    #: Indexed column of the inner table (None → primary key).
    inner_column: str | None = None
    #: Residual predicate applied to the join output.
    residual: Residual | None = None
    #: Estimated selectivity of the residual (for downstream estimates).
    selectivity: float = 1.0
    #: True when this re-expands an edge table already expanded once
    #: (enables the estimator's dedup damping).
    repeat_expansion: bool = False
    #: Force a join algorithm ("inl" or "hash"); None → cost-based.
    force: str | None = None


@dataclass
class ExpandSource:
    """Pipeline source: a bounded-depth friendship-circle expansion.

    The circle-shaped queries (Q1/Q3/Q5/Q6/Q9/Q11/Q13) start from the
    k-hop circle of one person rather than a key list; the source
    operator is :class:`TransitiveExpand` and the estimator's k-hop
    circle estimate seeds the pipeline's outer cardinality."""

    edges_table: str
    source_key: Any
    max_depth: int
    from_column: str = "person1_id"
    to_column: str = "person2_id"


@dataclass
class JoinSpec:
    """A linear pipeline: source (lookup or expansion) + join steps."""

    source_table: str | None = None
    source_keys: list[Any] = field(default_factory=list)
    #: Indexed column the source keys probe (None → primary key).
    source_column: str | None = None
    steps: list[JoinStep] = field(default_factory=list)
    #: Alternative source: a transitive expansion instead of a lookup.
    source_expand: ExpandSource | None = None

    def __post_init__(self) -> None:
        if (self.source_table is None) == (self.source_expand is None):
            raise PlanError(
                "JoinSpec needs exactly one of source_table / "
                "source_expand")


@dataclass
class PlannedJoin:
    """The optimizer's decision for one step (Fig. 4 annotations)."""

    step_index: int
    inner_table: str
    algorithm: str
    estimated_outer: float
    estimated_output: float
    inl_cost: float
    hash_cost: float

    @property
    def chosen_cost(self) -> float:
        return self.inl_cost if self.algorithm == "inl" \
            else self.hash_cost


@dataclass
class PlannedPipeline:
    """A physical plan plus the decisions that produced it."""

    root: Operator
    decisions: list[PlannedJoin]
    #: True when the decisions were served by the plan cache (operators
    #: are always rebuilt — they embed this execution's probe keys).
    from_cache: bool = False

    def execute(self) -> list[tuple]:
        return self.root.execute()

    def execute_columns(self) -> list[list]:
        """Full result as parallel column arrays (mode-aware)."""
        return self.root.execute_columns()


class Optimizer:
    """Plans join pipelines against a catalog.

    When the catalog carries a :class:`repro.cache.PlanCache` and the
    caller identifies the query shape (``query_id`` — an int for the 14
    production plans, any hashable for named variants like the Fig. 4
    leg pipelines), planning decisions are cached per ``(query id,
    catalog version)``: a hit rebuilds the cheap operator chain from the
    remembered join algorithms and skips cardinality estimation and
    costing entirely.
    """

    def __init__(self, catalog: Catalog) -> None:
        self.catalog = catalog
        self.estimator = CardinalityEstimator(catalog)

    def plan(self, spec: JoinSpec,
             query_id: int | str | None = None) -> PlannedPipeline:
        """Choose join algorithms and build the physical plan.

        ``query_id`` names the query shape for plan caching; pass None
        for ad-hoc or force-overridden pipelines (never cached).
        """
        cache = self.catalog.plan_cache
        if cache is not None and query_id is not None:
            cached = cache.get(query_id, self.catalog.version)
            if cached is not None:
                return self._rebuild(spec, cached)
        pipeline = self._plan_fresh(spec)
        if cache is not None and query_id is not None:
            cache.put(query_id, self.catalog.version, pipeline.decisions)
        return pipeline

    def _source(self, spec: JoinSpec) -> tuple[Operator, float]:
        """Build the pipeline source and estimate its cardinality."""
        if spec.source_expand is not None:
            expand = spec.source_expand
            root: Operator = TransitiveExpand(
                self.catalog.table(expand.edges_table),
                expand.source_key, expand.max_depth,
                expand.from_column, expand.to_column)
            rows = self.estimator.k_hop_circle(
                expand.max_depth, expand.edges_table,
                expand.from_column).rows
        else:
            source_table = self.catalog.table(spec.source_table)
            root = KeyLookup(source_table, spec.source_keys,
                             spec.source_column)
            rows = self.estimator.expand(
                float(len(spec.source_keys)), spec.source_table,
                spec.source_column).rows
        root.estimated_rows = rows
        return root, rows

    def _plan_fresh(self, spec: JoinSpec) -> PlannedPipeline:
        root, outer_rows = self._source(spec)
        decisions: list[PlannedJoin] = []
        for index, step in enumerate(spec.steps):
            root, outer_rows, decision = self._plan_step(
                root, outer_rows, index, step)
            decisions.append(decision)
        return PlannedPipeline(root, decisions)

    def _rebuild(self, spec: JoinSpec,
                 decisions) -> PlannedPipeline:
        """Rebuild the operator chain from cached algorithm choices."""
        root, _ = self._source(spec)
        for index, (step, decision) in enumerate(
                zip(spec.steps, decisions)):
            root = self._build_join(root, index, step,
                                    decision.algorithm)
            root.estimated_rows = decision.estimated_output
        return PlannedPipeline(root, list(decisions), from_cache=True)

    def _plan_step(self, outer: Operator, outer_rows: float, index: int,
                   step: JoinStep):
        inner = self.catalog.table(step.inner_table)
        estimate = self.estimator.expand(
            outer_rows, step.inner_table, step.inner_column,
            step.selectivity, step.repeat_expansion)
        fanout = self.estimator.fanout(step.inner_table,
                                       step.inner_column)
        inl_cost = outer_rows * (PROBE_COST + fanout) \
            + estimate.rows * OUTPUT_COST
        hash_cost = (inner.row_count * BUILD_COST
                     + outer_rows * PROBE_COST
                     + estimate.rows * OUTPUT_COST)
        indexed = (step.inner_column is None
                   or inner.has_hash_index(step.inner_column))
        if step.force is not None:
            algorithm = step.force
        elif not indexed:
            algorithm = "hash"
        elif step.inner_column is None:
            # Hash joins build on a join column; pk probes are INL-only.
            algorithm = "inl"
        else:
            algorithm = "inl" if inl_cost <= hash_cost else "hash"

        joined = self._build_join(outer, index, step, algorithm)
        joined.estimated_rows = estimate.rows
        decision = PlannedJoin(
            step_index=index,
            inner_table=step.inner_table,
            algorithm=algorithm,
            estimated_outer=outer_rows,
            estimated_output=estimate.rows,
            inl_cost=inl_cost,
            hash_cost=hash_cost,
        )
        return joined, estimate.rows, decision

    def _build_join(self, outer: Operator, index: int, step: JoinStep,
                    algorithm: str) -> Operator:
        """Construct one step's physical operators for an algorithm."""
        inner = self.catalog.table(step.inner_table)
        indexed = (step.inner_column is None
                   or inner.has_hash_index(step.inner_column))
        if algorithm == "inl" and not indexed:
            raise PlanError(
                f"cannot INL-join {step.inner_table}.{step.inner_column} "
                "without an index")

        if algorithm == "inl":
            # Declarative residuals are pushed into the join for late
            # materialization (vectorized path): candidates the residual
            # rejects are never assembled into output columns.  The
            # Filter above still applies the predicate on the volcano
            # path (and passes already-filtered chunks through).
            pushed = step.residual \
                if isinstance(step.residual, Predicate) else None
            joined: Operator = IndexNestedLoopJoin(
                outer, inner, step.outer_key, step.inner_column,
                residual=pushed)
        else:
            build: Operator = Scan(inner)
            if step.inner_column is None:
                raise PlanError("hash join needs an inner column")
            joined = HashJoin(build, outer, step.inner_column,
                              step.outer_key,
                              label=f"hashjoin({step.inner_table})",
                              prefix="inner_")
        if step.residual is not None:
            prefiltered = (algorithm == "inl"
                           and isinstance(step.residual, Predicate))
            joined = Filter(joined, step.residual,
                            label=f"filter#{index}",
                            prefiltered=prefiltered)
        return joined
