"""Declarative column predicates for residual filters.

A :class:`JoinStep` residual written as a plain ``lambda row: ...`` can
only run row-at-a-time.  The declarative forms here name the column they
test, so a :class:`~.operators.Filter` can resolve positions against its
child schema once and then evaluate the predicate either way:

* tuple mode — compiled to a ``row -> bool`` callable;
* vectorized mode — evaluated as one pass over the named column,
  producing the list of surviving row indices for a bulk gather.

Only the comparison shapes the 14 complex-read plans need are modelled;
``Where`` covers anything else with a per-value function (still bulk in
vectorized mode: one comprehension over a single column rather than one
call per row per operator hop).
"""

from __future__ import annotations

import operator as _op
from itertools import compress, count, repeat
from typing import Any, Callable, Iterable, Sequence

from ..errors import EngineError
from .rows import Schema

_OPS: dict[str, Callable[[Any, Any], bool]] = {
    "lt": _op.lt,
    "le": _op.le,
    "gt": _op.gt,
    "ge": _op.ge,
    "eq": _op.eq,
    "ne": _op.ne,
}


class Predicate:
    """Base class: a column-aware boolean condition."""

    def resolve(self, schema: Schema) -> None:
        """Bind column names to positions in the input schema."""
        raise NotImplementedError

    def row_fn(self) -> Callable[[tuple], bool]:
        """Row-at-a-time form (after :meth:`resolve`)."""
        raise NotImplementedError

    def keep_indices(self, columns: Sequence[Sequence]) -> list[int]:
        """Indices of surviving rows in one columnar pass."""
        raise NotImplementedError


class Compare(Predicate):
    """``column <op> value`` for op in lt/le/gt/ge/eq/ne."""

    __slots__ = ("column", "op", "value", "_position", "_fn")

    def __init__(self, column: str, op: str, value: Any) -> None:
        if op not in _OPS:
            raise EngineError(f"unknown comparison {op!r}")
        self.column = column
        self.op = op
        self.value = value
        self._position: int | None = None
        self._fn = _OPS[op]

    def resolve(self, schema: Schema) -> None:
        self._position = schema.position(self.column)

    def row_fn(self) -> Callable[[tuple], bool]:
        position, fn, value = self._position, self._fn, self.value
        return lambda row: fn(row[position], value)

    def keep_indices(self, columns: Sequence[Sequence]) -> list[int]:
        # map + compress keep the whole scan in C: no Python-level loop
        # body, just one bound-method dispatch per batch.  count()
        # instead of range(len(...)) so the column may be a lazy
        # iterator (the INL join's un-materialized candidate view).
        flags = map(self._fn, columns[self._position],
                    repeat(self.value))
        return list(compress(count(), flags))

    def __repr__(self) -> str:
        return f"{self.column} {self.op} {self.value!r}"


class InSet(Predicate):
    """``column in values`` (or ``not in`` with ``negate=True``)."""

    __slots__ = ("column", "values", "negate", "_position")

    def __init__(self, column: str, values: Iterable[Any],
                 negate: bool = False) -> None:
        self.column = column
        self.values = frozenset(values)
        self.negate = negate
        self._position: int | None = None

    def resolve(self, schema: Schema) -> None:
        self._position = schema.position(self.column)

    def row_fn(self) -> Callable[[tuple], bool]:
        position, values = self._position, self.values
        if self.negate:
            return lambda row: row[position] not in values
        return lambda row: row[position] in values

    def keep_indices(self, columns: Sequence[Sequence]) -> list[int]:
        flags = map(self.values.__contains__, columns[self._position])
        if self.negate:
            flags = map(_op.not_, flags)
        return list(compress(count(), flags))

    def __repr__(self) -> str:
        word = "not in" if self.negate else "in"
        return f"{self.column} {word} {{{len(self.values)} values}}"


class Where(Predicate):
    """``fn(column_value)`` — arbitrary per-value condition."""

    __slots__ = ("column", "fn", "_position")

    def __init__(self, column: str, fn: Callable[[Any], bool]) -> None:
        self.column = column
        self.fn = fn
        self._position: int | None = None

    def resolve(self, schema: Schema) -> None:
        self._position = schema.position(self.column)

    def row_fn(self) -> Callable[[tuple], bool]:
        position, fn = self._position, self.fn
        return lambda row: fn(row[position])

    def keep_indices(self, columns: Sequence[Sequence]) -> list[int]:
        fn = self.fn
        column = columns[self._position]
        return [i for i, item in enumerate(column) if fn(item)]

    def __repr__(self) -> str:
        return f"{self.column} where {getattr(self.fn, '__name__', '?')}"


class All(Predicate):
    """Conjunction of predicates, evaluated column-wise in sequence."""

    __slots__ = ("parts",)

    def __init__(self, *parts: Predicate) -> None:
        if not parts:
            raise EngineError("All() of nothing")
        self.parts = parts

    def resolve(self, schema: Schema) -> None:
        for part in self.parts:
            part.resolve(schema)

    def row_fn(self) -> Callable[[tuple], bool]:
        fns = [part.row_fn() for part in self.parts]
        if len(fns) == 1:
            return fns[0]
        return lambda row: all(fn(row) for fn in fns)

    def keep_indices(self, columns: Sequence[Sequence]) -> list[int]:
        # Each conjunct scans only its own column; the surviving index
        # sets are intersected and re-sorted to preserve row order.
        kept = set(self.parts[0].keep_indices(columns))
        for part in self.parts[1:]:
            if not kept:
                break
            kept &= set(part.keep_indices(columns))
        return sorted(kept)

    def __repr__(self) -> str:
        return " and ".join(repr(part) for part in self.parts)
