"""Volcano-style physical operators.

Every operator is an iterable of tuples with a :class:`~.rows.Schema`.
Operators count the tuples they produce (``tuples_out``) — these are the
*de facto* intermediate result cardinalities the parameter-curation cost
function ``C_out`` is defined over (paper §4.1: "as opposed to estimates
of C_out ... we use the de facto amounts of intermediate result
cardinalities"), and what the Figure 4 bench reports per plan node.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Iterator

from .. import telemetry
from ..errors import EngineError
from .rows import Schema, Table


class Operator:
    """Base class: iterable of tuples with an output schema."""

    def __init__(self, schema: Schema, label: str) -> None:
        self.schema = schema
        self.label = label
        self.tuples_out = 0
        self.children: list["Operator"] = []

    def _produce(self) -> Iterator[tuple]:
        raise NotImplementedError

    def __iter__(self) -> Iterator[tuple]:
        if telemetry.active:
            return self._iter_traced()
        return self._iter_plain()

    def _iter_plain(self) -> Iterator[tuple]:
        for row in self._produce():
            self.tuples_out += 1
            yield row

    def _iter_traced(self) -> Iterator[tuple]:
        # The span covers this operator's whole iteration, including
        # time spent suspended while the consumer works; children pulled
        # inside _produce() nest under it.  The tuples_out attribute is
        # what feeds ``explain(show_actuals=True)`` and the trace view,
        # and is recorded even when a consumer (Limit, TopK) abandons
        # the iterator early.
        with telemetry.span("engine." + self.label) as span:
            try:
                for row in self._produce():
                    self.tuples_out += 1
                    yield row
            finally:
                span.set("tuples_out", self.tuples_out)

    def execute(self) -> list[tuple]:
        """Materialize the full result."""
        return list(self)

    def reset_counters(self) -> None:
        self.tuples_out = 0
        for child in self.children:
            child.reset_counters()


class Scan(Operator):
    """Full table scan with an optional residual predicate."""

    def __init__(self, table: Table,
                 predicate: Callable[[tuple], bool] | None = None) -> None:
        super().__init__(table.schema, f"scan({table.name})")
        self.table = table
        self.predicate = predicate

    def _produce(self) -> Iterator[tuple]:
        if self.predicate is None:
            yield from self.table.rows
        else:
            for row in self.table.rows:
                if self.predicate(row):
                    yield row


class IndexRangeScan(Operator):
    """Ordered-index range scan (message.creation_date et al.)."""

    def __init__(self, table: Table, low: Any = None, high: Any = None,
                 reverse: bool = False) -> None:
        super().__init__(table.schema,
                         f"ixrange({table.name})[{low}..{high}]")
        self.table = table
        self.low = low
        self.high = high
        self.reverse = reverse

    def _produce(self) -> Iterator[tuple]:
        yield from self.table.range_scan(self.low, self.high,
                                         self.reverse)


class KeyLookup(Operator):
    """Primary-key or hash-index point lookups from a key iterable."""

    def __init__(self, table: Table, keys: Iterable[Any],
                 column: str | None = None) -> None:
        name = column or table.primary_key
        super().__init__(table.schema, f"lookup({table.name}.{name})")
        self.table = table
        self.keys = keys
        self.column = column

    def _produce(self) -> Iterator[tuple]:
        if self.column is None:
            for key in self.keys:
                row = self.table.get_pk(key)
                if row is not None:
                    yield row
        else:
            for key in self.keys:
                yield from self.table.probe(self.column, key)


class Filter(Operator):
    """Residual predicate over any input operator."""

    def __init__(self, child: Operator,
                 predicate: Callable[[tuple], bool],
                 label: str = "filter") -> None:
        super().__init__(child.schema, label)
        self.child = child
        self.children = [child]
        self.predicate = predicate

    def _produce(self) -> Iterator[tuple]:
        for row in self.child:
            if self.predicate(row):
                yield row


class Project(Operator):
    """Column projection / renaming."""

    def __init__(self, child: Operator, columns: list[str],
                 output_names: list[str] | None = None) -> None:
        schema = Schema(output_names or columns)
        super().__init__(schema, f"project({','.join(columns)})")
        self.child = child
        self.children = [child]
        self.positions = [child.schema.position(c) for c in columns]

    def _produce(self) -> Iterator[tuple]:
        for row in self.child:
            yield tuple(row[p] for p in self.positions)


class IndexNestedLoopJoin(Operator):
    """For each outer row, probe an index on the inner table.

    The optimal choice when the outer side is small (Fig. 4's ⨝1/⨝2:
    "This is best done by looking up these 120 tuples in the index on the
    primary key of Friends, i.e. by performing an index nested loop
    join").
    """

    def __init__(self, outer: Operator, inner: Table, outer_key: str,
                 inner_column: str | None = None,
                 label: str | None = None) -> None:
        schema = outer.schema.concat(inner.schema, prefix="inner_")
        name = label or (f"inl({inner.name} on "
                         f"{inner_column or inner.primary_key})")
        super().__init__(schema, name)
        self.outer = outer
        self.children = [outer]
        self.inner = inner
        self.outer_position = outer.schema.position(outer_key)
        self.inner_column = inner_column

    def _produce(self) -> Iterator[tuple]:
        if self.inner_column is None:
            for outer_row in self.outer:
                inner_row = self.inner.get_pk(
                    outer_row[self.outer_position])
                if inner_row is not None:
                    yield outer_row + inner_row
        else:
            for outer_row in self.outer:
                for inner_row in self.inner.probe(
                        self.inner_column, outer_row[self.outer_position]):
                    yield outer_row + inner_row


class HashJoin(Operator):
    """Build a hash table on the build side, probe with the probe side.

    The optimal choice when both inputs are large or the inner side has
    no usable index (Fig. 4's ⨝3: "the inputs of the last ⨝3 are too
    large, and the corresponding index is not available in Post, so Hash
    join is the optimal algorithm here").
    """

    def __init__(self, build: Operator, probe: Operator, build_key: str,
                 probe_key: str, label: str | None = None,
                 prefix: str = "build_") -> None:
        # Output column order is probe ++ build so that a hash join is
        # plan-compatible with an INL join of the same step (outer side
        # first); ``prefix`` disambiguates colliding column names.
        schema = probe.schema.concat(build.schema, prefix=prefix)
        super().__init__(schema, label or "hashjoin")
        self.build = build
        self.probe = probe
        self.children = [build, probe]
        self.build_position = build.schema.position(build_key)
        self.probe_position = probe.schema.position(probe_key)

    def _produce(self) -> Iterator[tuple]:
        table: dict[Any, list[tuple]] = {}
        for row in self.build:
            table.setdefault(row[self.build_position], []).append(row)
        for probe_row in self.probe:
            for build_row in table.get(probe_row[self.probe_position], ()):
                yield probe_row + build_row


class Sort(Operator):
    """Full sort on a key function."""

    def __init__(self, child: Operator,
                 key: Callable[[tuple], Any],
                 descending: bool = False) -> None:
        super().__init__(child.schema, "sort")
        self.child = child
        self.children = [child]
        self.key = key
        self.descending = descending

    def _produce(self) -> Iterator[tuple]:
        yield from sorted(self.child, key=self.key,
                          reverse=self.descending)


class TopK(Operator):
    """Sort + limit fused (bounded memory)."""

    def __init__(self, child: Operator, key: Callable[[tuple], Any],
                 k: int, descending: bool = False) -> None:
        super().__init__(child.schema, f"top{k}")
        self.child = child
        self.children = [child]
        self.key = key
        self.k = k
        self.descending = descending

    def _produce(self) -> Iterator[tuple]:
        import heapq

        if self.descending:
            rows = heapq.nsmallest(self.k, self.child,
                                   key=lambda r: _neg(self.key(r)))
        else:
            rows = heapq.nsmallest(self.k, self.child, key=self.key)
        yield from rows


def _neg(key):
    """Negate a sort key for descending heapq selection."""
    if isinstance(key, tuple):
        return tuple(_neg(part) for part in key)
    if isinstance(key, (int, float)):
        return -key
    raise EngineError(f"cannot order descending on {type(key)}")


class Limit(Operator):
    """First ``k`` rows of the input."""

    def __init__(self, child: Operator, k: int) -> None:
        super().__init__(child.schema, f"limit({k})")
        self.child = child
        self.children = [child]
        self.k = k

    def _produce(self) -> Iterator[tuple]:
        for i, row in enumerate(self.child):
            if i >= self.k:
                return
            yield row


class Distinct(Operator):
    """Duplicate elimination (hash-based)."""

    def __init__(self, child: Operator) -> None:
        super().__init__(child.schema, "distinct")
        self.child = child
        self.children = [child]

    def _produce(self) -> Iterator[tuple]:
        seen: set[tuple] = set()
        for row in self.child:
            if row not in seen:
                seen.add(row)
                yield row


class GroupAggregate(Operator):
    """Hash group-by with count/sum/min/max aggregates.

    ``aggregates`` maps output column name to ``(kind, input column)``
    where kind is one of ``count``, ``sum``, ``min``, ``max``.
    """

    def __init__(self, child: Operator, group_by: list[str],
                 aggregates: dict[str, tuple[str, str | None]]) -> None:
        schema = Schema(list(group_by) + list(aggregates))
        super().__init__(schema, f"groupby({','.join(group_by)})")
        self.child = child
        self.children = [child]
        self.group_positions = [child.schema.position(c) for c in group_by]
        self.aggregates = [
            (kind, child.schema.position(column)
             if column is not None else None)
            for kind, column in aggregates.values()]

    def _produce(self) -> Iterator[tuple]:
        groups: dict[tuple, list] = {}
        for row in self.child:
            key = tuple(row[p] for p in self.group_positions)
            state = groups.get(key)
            if state is None:
                state = groups[key] = [None] * len(self.aggregates)
            for i, (kind, position) in enumerate(self.aggregates):
                value = row[position] if position is not None else 1
                current = state[i]
                if kind == "count":
                    state[i] = (current or 0) + 1
                elif kind == "sum":
                    state[i] = (current or 0) + value
                elif kind == "min":
                    state[i] = value if current is None \
                        else min(current, value)
                elif kind == "max":
                    state[i] = value if current is None \
                        else max(current, value)
                else:
                    raise EngineError(f"unknown aggregate {kind}")
        for key, state in groups.items():
            yield key + tuple(state)


class Union(Operator):
    """Bag union of same-schema inputs."""

    def __init__(self, inputs: list[Operator]) -> None:
        if not inputs:
            raise EngineError("union of nothing")
        super().__init__(inputs[0].schema, "union")
        self.inputs = inputs
        self.children = list(inputs)

    def _produce(self) -> Iterator[tuple]:
        for child in self.inputs:
            yield from child


class TransitiveExpand(Operator):
    """Bounded-depth BFS over a two-column edge table.

    The "vendor-specific extension to SQL" (paper §1: Virtuoso introduces
    "shortcuts for recursive SQL subqueries to run specific graph
    algorithms inside SQL queries").  Output schema: ``(node, distance)``
    for 1 ≤ distance ≤ max_depth, excluding the source.
    """

    def __init__(self, edges: Table, source: Any, max_depth: int,
                 from_column: str = "person1_id",
                 to_column: str = "person2_id") -> None:
        super().__init__(Schema(("node", "distance")),
                         f"transitive({edges.name},d≤{max_depth})")
        self.edges = edges
        self.source = source
        self.max_depth = max_depth
        self.from_column = from_column
        self.to_column = to_column

    def _produce(self) -> Iterator[tuple]:
        to_position = self.edges.schema.position(self.to_column)
        seen = {self.source}
        frontier = [self.source]
        for depth in range(1, self.max_depth + 1):
            next_frontier = []
            for node in frontier:
                for row in self.edges.probe(self.from_column, node):
                    neighbor = row[to_position]
                    if neighbor not in seen:
                        seen.add(neighbor)
                        next_frontier.append(neighbor)
                        yield neighbor, depth
            frontier = next_frontier
            if not frontier:
                return


def collect_cardinalities(root: Operator) -> dict[str, int]:
    """Post-execution ``label → tuples_out`` over the whole plan tree."""
    result: dict[str, int] = {}

    def visit(op: Operator) -> None:
        result[op.label] = op.tuples_out
        for child in op.children:
            visit(child)

    visit(root)
    return result
