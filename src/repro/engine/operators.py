"""Physical operators: dual-mode volcano / vectorized execution.

Every operator is an iterable of tuples with a :class:`~.rows.Schema`.
Operators count the tuples they produce (``tuples_out``) — these are the
*de facto* intermediate result cardinalities the parameter-curation cost
function ``C_out`` is defined over (paper §4.1: "as opposed to estimates
of C_out ... we use the de facto amounts of intermediate result
cardinalities"), and what the Figure 4 bench reports per plan node.

Two execution strategies share each operator (selected globally by
:func:`~.chunks.execution_mode`):

* ``_produce()`` — the original tuple-at-a-time volcano path, one
  Python generator hop per row per operator;
* ``_produce_chunks()`` — batch-at-a-time columnar execution: operators
  exchange :class:`~.chunks.Chunk` batches of parallel column arrays
  and do their work as bulk list comprehensions / ``zip`` transposes /
  set operations.  ``TransitiveExpand`` additionally switches from
  per-node index probes to the packed CSR adjacency
  (:meth:`~.rows.Table.csr`), expanding whole BFS frontiers at once.

Both paths produce the same rows; ``tuples_out`` counts identically
(chunk emission adds ``len(chunk)``).  Consumers that abandon iteration
early (Limit, TopK over a streaming child) may leave a producer's count
up to one chunk higher in vectorized mode — the full-materialization
counts the benches and tests compare are unaffected.
"""

from __future__ import annotations

import operator as _op
from collections import Counter
from itertools import repeat as _repeat
from typing import Any, Callable, Iterable, Iterator

from .. import telemetry
from ..errors import EngineError
from .chunks import CHUNK_SIZE, VECTORIZED, Chunk, execution_mode
from .predicates import Predicate
from .rows import Schema, Table


class Operator:
    """Base class: iterable of tuples with an output schema."""

    def __init__(self, schema: Schema, label: str) -> None:
        self.schema = schema
        self.label = label
        self.tuples_out = 0
        self.children: list["Operator"] = []
        #: Optimizer-estimated output rows (set during planning; None
        #: for hand-built trees).  Rendered by EXPLAIN next to actuals.
        self.estimated_rows: float | None = None

    # -- tuple-at-a-time path ------------------------------------------------

    def _produce(self) -> Iterator[tuple]:
        raise NotImplementedError

    def __iter__(self) -> Iterator[tuple]:
        if execution_mode() == VECTORIZED:
            return self._iter_chunk_rows()
        if telemetry.active:
            return self._iter_traced()
        return self._iter_plain()

    def _iter_plain(self) -> Iterator[tuple]:
        for row in self._produce():
            self.tuples_out += 1
            yield row

    def _iter_traced(self) -> Iterator[tuple]:
        # The span covers this operator's whole iteration, including
        # time spent suspended while the consumer works; children pulled
        # inside _produce() nest under it.  The tuples_out attribute is
        # what feeds ``explain(show_actuals=True)`` and the trace view,
        # and is recorded even when a consumer (Limit, TopK) abandons
        # the iterator early.
        with telemetry.span("engine." + self.label) as span:
            try:
                for row in self._produce():
                    self.tuples_out += 1
                    yield row
            finally:
                span.set("tuples_out", self.tuples_out)

    # -- batch-at-a-time path ------------------------------------------------

    def _produce_chunks(self) -> Iterator[Chunk]:
        # Fallback so hand-built operators without a vectorized form
        # still run under the vectorized engine: batch the tuple path.
        rows: list[tuple] = []
        for row in self._produce():
            rows.append(row)
            if len(rows) >= CHUNK_SIZE:
                yield Chunk.from_rows(rows, len(self.schema))
                rows = []
        if rows:
            yield Chunk.from_rows(rows, len(self.schema))

    def chunks(self) -> Iterator[Chunk]:
        """Chunk stream with counting and (optional) tracing."""
        if telemetry.active:
            return self._chunks_traced()
        return self._chunks_plain()

    def _chunks_plain(self) -> Iterator[Chunk]:
        for chunk in self._produce_chunks():
            self.tuples_out += len(chunk)
            yield chunk

    def _chunks_traced(self) -> Iterator[Chunk]:
        with telemetry.span("engine." + self.label) as span:
            try:
                for chunk in self._produce_chunks():
                    self.tuples_out += len(chunk)
                    yield chunk
            finally:
                span.set("tuples_out", self.tuples_out)

    def _iter_chunk_rows(self) -> Iterator[tuple]:
        # Row view of the chunk stream; counting happens in chunks().
        for chunk in self.chunks():
            yield from chunk.rows()

    # -- shared --------------------------------------------------------------

    def execute(self) -> list[tuple]:
        """Materialize the full result."""
        return list(self)

    def execute_columns(self) -> list[list]:
        """Materialize the full result as parallel column arrays."""
        if execution_mode() == VECTORIZED:
            columns: list[list] = [[] for _ in self.schema.columns]
            for chunk in self.chunks():
                for acc, column in zip(columns, chunk.columns):
                    acc.extend(column)
            return columns
        rows = self.execute()
        if not rows:
            return [[] for _ in self.schema.columns]
        return [list(column) for column in zip(*rows)]

    def reset_counters(self) -> None:
        self.tuples_out = 0
        for child in self.children:
            child.reset_counters()


def _resolve_predicate(predicate, schema: Schema):
    """Normalize a residual into ``(row_fn, predicate_or_None)``."""
    if isinstance(predicate, Predicate):
        predicate.resolve(schema)
        return predicate.row_fn(), predicate
    return predicate, None


class Scan(Operator):
    """Full table scan with an optional residual predicate."""

    def __init__(self, table: Table,
                 predicate: Callable[[tuple], bool] | Predicate | None
                 = None) -> None:
        super().__init__(table.schema, f"scan({table.name})")
        self.table = table
        if predicate is None:
            self.predicate = None
            self._columnar = None
        else:
            self.predicate, self._columnar = _resolve_predicate(
                predicate, table.schema)

    def _produce(self) -> Iterator[tuple]:
        if self.predicate is None:
            yield from self.table.rows
        else:
            for row in self.table.rows:
                if self.predicate(row):
                    yield row

    def _produce_chunks(self) -> Iterator[Chunk]:
        rows = self.table.rows
        width = len(self.schema)
        for start in range(0, len(rows), CHUNK_SIZE):
            block = rows[start:start + CHUNK_SIZE]
            chunk = Chunk.from_rows(block, width)
            if self.predicate is not None:
                if self._columnar is not None:
                    kept = self._columnar.keep_indices(chunk.columns)
                    if len(kept) == len(block):
                        yield chunk
                        continue
                    if not kept:
                        continue
                    chunk = chunk.gather(kept)
                else:
                    predicate = self.predicate
                    survivors = [row for row in block if predicate(row)]
                    if not survivors:
                        continue
                    chunk = Chunk.from_rows(survivors, width)
            if len(chunk):
                yield chunk


class IndexRangeScan(Operator):
    """Ordered-index range scan (message.creation_date et al.)."""

    def __init__(self, table: Table, low: Any = None, high: Any = None,
                 reverse: bool = False) -> None:
        super().__init__(table.schema,
                         f"ixrange({table.name})[{low}..{high}]")
        self.table = table
        self.low = low
        self.high = high
        self.reverse = reverse

    def _produce(self) -> Iterator[tuple]:
        yield from self.table.range_scan(self.low, self.high,
                                         self.reverse)

    def _produce_chunks(self) -> Iterator[Chunk]:
        width = len(self.schema)
        rows: list[tuple] = []
        for row in self.table.range_scan(self.low, self.high,
                                         self.reverse):
            rows.append(row)
            if len(rows) >= CHUNK_SIZE:
                yield Chunk.from_rows(rows, width)
                rows = []
        if rows:
            yield Chunk.from_rows(rows, width)


class KeyLookup(Operator):
    """Primary-key or hash-index point lookups from a key iterable."""

    def __init__(self, table: Table, keys: Iterable[Any],
                 column: str | None = None) -> None:
        name = column or table.primary_key
        super().__init__(table.schema, f"lookup({table.name}.{name})")
        self.table = table
        self.keys = keys
        self.column = column

    def _produce(self) -> Iterator[tuple]:
        if self.column is None:
            for key in self.keys:
                row = self.table.get_pk(key)
                if row is not None:
                    yield row
        else:
            for key in self.keys:
                yield from self.table.probe(self.column, key)

    def _produce_chunks(self) -> Iterator[Chunk]:
        width = len(self.schema)
        rows: list[tuple] = []
        if self.column is None:
            get_pk = self.table.get_pk
            for key in self.keys:
                row = get_pk(key)
                if row is not None:
                    rows.append(row)
                    if len(rows) >= CHUNK_SIZE:
                        yield Chunk.from_rows(rows, width)
                        rows = []
        else:
            probe = self.table.probe
            column = self.column
            for key in self.keys:
                rows.extend(probe(column, key))
                if len(rows) >= CHUNK_SIZE:
                    yield Chunk.from_rows(rows, width)
                    rows = []
        if rows:
            yield Chunk.from_rows(rows, width)


class Filter(Operator):
    """Residual predicate over any input operator.

    Accepts either a plain row callable (volcano-era residuals) or a
    declarative :class:`~.predicates.Predicate`, which additionally
    evaluates column-at-a-time under vectorized execution.
    """

    def __init__(self, child: Operator,
                 predicate: Callable[[tuple], bool] | Predicate,
                 label: str = "filter",
                 prefiltered: bool = False) -> None:
        super().__init__(child.schema, label)
        self.child = child
        self.children = [child]
        self.predicate, self._columnar = _resolve_predicate(
            predicate, child.schema)
        # True when the child already applied this predicate on its
        # vectorized path (residual pushdown): chunks pass through
        # untouched, while the volcano path still filters.
        self.prefiltered = prefiltered

    def _produce(self) -> Iterator[tuple]:
        for row in self.child:
            if self.predicate(row):
                yield row

    def _produce_chunks(self) -> Iterator[Chunk]:
        if self.prefiltered:
            yield from self.child.chunks()
            return
        columnar = self._columnar
        if columnar is not None:
            for chunk in self.child.chunks():
                kept = columnar.keep_indices(chunk.columns)
                if len(kept) == len(chunk):
                    yield chunk
                elif kept:
                    yield chunk.gather(kept)
        else:
            predicate = self.predicate
            width = len(self.schema)
            for chunk in self.child.chunks():
                survivors = [row for row in chunk.rows()
                             if predicate(row)]
                if survivors:
                    yield Chunk.from_rows(survivors, width)


class Project(Operator):
    """Column projection / renaming."""

    def __init__(self, child: Operator, columns: list[str],
                 output_names: list[str] | None = None) -> None:
        schema = Schema(output_names or columns)
        super().__init__(schema, f"project({','.join(columns)})")
        self.child = child
        self.children = [child]
        self.positions = [child.schema.position(c) for c in columns]

    def _produce(self) -> Iterator[tuple]:
        for row in self.child:
            yield tuple(row[p] for p in self.positions)

    def _produce_chunks(self) -> Iterator[Chunk]:
        positions = self.positions
        for chunk in self.child.chunks():
            yield Chunk([chunk.columns[p] for p in positions])


class IndexNestedLoopJoin(Operator):
    """For each outer row, probe an index on the inner table.

    The optimal choice when the outer side is small (Fig. 4's ⨝1/⨝2:
    "This is best done by looking up these 120 tuples in the index on the
    primary key of Friends, i.e. by performing an index nested loop
    join").
    """

    def __init__(self, outer: Operator, inner: Table, outer_key: str,
                 inner_column: str | None = None,
                 label: str | None = None,
                 residual: "Predicate | None" = None) -> None:
        schema = outer.schema.concat(inner.schema, prefix="inner_")
        name = label or (f"inl({inner.name} on "
                         f"{inner_column or inner.primary_key})")
        super().__init__(schema, name)
        self.outer = outer
        self.children = [outer]
        self.inner = inner
        self.outer_position = outer.schema.position(outer_key)
        self.inner_column = inner_column
        # Late materialization: a pushed-down residual is evaluated on
        # candidate (outer index, inner row) pairs BEFORE the joined
        # columns are assembled, so rejected rows are never copied.
        # Vectorized-path only — the volcano path leaves filtering to
        # the Filter operator above (which, on the vectorized path,
        # re-checks the surviving rows and passes chunks through).
        self.residual = residual
        if residual is not None:
            residual.resolve(schema)

    def _produce(self) -> Iterator[tuple]:
        if self.inner_column is None:
            for outer_row in self.outer:
                inner_row = self.inner.get_pk(
                    outer_row[self.outer_position])
                if inner_row is not None:
                    yield outer_row + inner_row
        else:
            for outer_row in self.outer:
                for inner_row in self.inner.probe(
                        self.inner_column, outer_row[self.outer_position]):
                    yield outer_row + inner_row

    def _produce_chunks(self) -> Iterator[Chunk]:
        position = self.outer_position
        if self.inner_column is None:
            # Probe the pk dict directly: map(dict.get, keys) stays in C
            # end to end, skipping 1 Python frame per key.
            get_pk = self.inner._pk_index.get
            for chunk in self.outer.chunks():
                keys = chunk.columns[position]
                # Batch the pk probes through map/filter so the common
                # all-hits case never enters a Python-level loop body.
                rows = list(map(get_pk, keys))
                inner_rows: list[tuple] = list(filter(None, rows))
                if len(inner_rows) == len(rows):
                    indices: list[int] = list(range(len(rows)))
                else:
                    indices = [i for i, row in enumerate(rows)
                               if row is not None]
                if indices:
                    yield self._gathered(chunk, indices, inner_rows)
        else:
            # Same trick for hash-index probes: resolve the index dict
            # once, then each chunk is one C-level map over the keys.
            index = self.inner._hash_indexes.get(self.inner_column)
            if index is None:
                raise EngineError(
                    f"no hash index on {self.inner.name}."
                    f"{self.inner_column}")
            lookup = index.get
            for chunk in self.outer.chunks():
                keys = chunk.columns[position]
                indices = []
                inner_rows = []
                for i, matches in enumerate(map(lookup, keys)):
                    if matches:
                        indices.extend(_repeat(i, len(matches)))
                        inner_rows.extend(matches)
                if indices:
                    yield self._gathered(chunk, indices, inner_rows)

    def _gathered(self, chunk: Chunk, indices: list[int],
                  inner_rows: list[tuple]) -> Chunk:
        if self.residual is not None:
            lazy = _LazyJoinColumns(chunk, indices, inner_rows,
                                    len(chunk.columns))
            kept = self.residual.keep_indices(lazy)
            if len(kept) != len(indices):
                indices = list(map(indices.__getitem__, kept))
                inner_rows = list(map(inner_rows.__getitem__, kept))
        outer_columns = [list(map(column.__getitem__, indices))
                         for column in chunk.columns]
        inner_columns = [list(column) for column in zip(*inner_rows)] \
            if inner_rows else [[] for __ in self.inner.schema.columns]
        return Chunk(outer_columns + inner_columns)


class _LazyJoinColumns:
    """Column view over un-materialized join candidates.

    Supplies ``predicate.keep_indices`` with exactly the columns it
    touches: an outer column is gathered through the candidate index
    list, an inner column is extracted straight from the matched rows —
    the full joined chunk is never built for rows the residual rejects.
    """

    __slots__ = ("_chunk", "_indices", "_inner_rows", "_outer_width")

    def __init__(self, chunk: Chunk, indices: list[int],
                 inner_rows: list[tuple], outer_width: int) -> None:
        self._chunk = chunk
        self._indices = indices
        self._inner_rows = inner_rows
        self._outer_width = outer_width

    def __getitem__(self, position: int):
        # Returns a lazy iterator, not a list: the predicate's single
        # map/compress pass consumes it without an intermediate copy.
        if position < self._outer_width:
            column = self._chunk.columns[position]
            return map(column.__getitem__, self._indices)
        picker = _op.itemgetter(position - self._outer_width)
        return map(picker, self._inner_rows)


class HashJoin(Operator):
    """Build a hash table on the build side, probe with the probe side.

    The optimal choice when both inputs are large or the inner side has
    no usable index (Fig. 4's ⨝3: "the inputs of the last ⨝3 are too
    large, and the corresponding index is not available in Post, so Hash
    join is the optimal algorithm here").
    """

    def __init__(self, build: Operator, probe: Operator, build_key: str,
                 probe_key: str, label: str | None = None,
                 prefix: str = "build_") -> None:
        # Output column order is probe ++ build so that a hash join is
        # plan-compatible with an INL join of the same step (outer side
        # first); ``prefix`` disambiguates colliding column names.
        schema = probe.schema.concat(build.schema, prefix=prefix)
        super().__init__(schema, label or "hashjoin")
        self.build = build
        self.probe = probe
        self.children = [build, probe]
        self.build_position = build.schema.position(build_key)
        self.probe_position = probe.schema.position(probe_key)

    def _produce(self) -> Iterator[tuple]:
        table: dict[Any, list[tuple]] = {}
        for row in self.build:
            table.setdefault(row[self.build_position], []).append(row)
        for probe_row in self.probe:
            for build_row in table.get(probe_row[self.probe_position], ()):
                yield probe_row + build_row

    def _produce_chunks(self) -> Iterator[Chunk]:
        # Build: accumulate row tuples and a key → row-index multimap.
        table: dict[Any, list[int]] = {}
        build_rows: list[tuple] = []
        build_position = self.build_position
        for chunk in self.build.chunks():
            base = len(build_rows)
            build_rows.extend(chunk.rows())
            keys = chunk.columns[build_position]
            for i, key in enumerate(keys):
                bucket = table.get(key)
                if bucket is None:
                    bucket = table[key] = []
                bucket.append(base + i)
        # Probe: per chunk, gather matching probe indices and build rows.
        probe_position = self.probe_position
        get = table.get
        for chunk in self.probe.chunks():
            keys = chunk.columns[probe_position]
            indices: list[int] = []
            matches: list[int] = []
            for i, key in enumerate(keys):
                bucket = get(key)
                if bucket:
                    indices.extend([i] * len(bucket))
                    matches.extend(bucket)
            if not indices:
                continue
            probe_columns = [[column[i] for i in indices]
                            for column in chunk.columns]
            build_columns = list(
                zip(*(build_rows[j] for j in matches)))
            yield Chunk(probe_columns + build_columns)


class Sort(Operator):
    """Full sort on a key function."""

    def __init__(self, child: Operator,
                 key: Callable[[tuple], Any],
                 descending: bool = False) -> None:
        super().__init__(child.schema, "sort")
        self.child = child
        self.children = [child]
        self.key = key
        self.descending = descending

    def _produce(self) -> Iterator[tuple]:
        yield from sorted(self.child, key=self.key,
                          reverse=self.descending)

    def _produce_chunks(self) -> Iterator[Chunk]:
        rows: list[tuple] = []
        for chunk in self.child.chunks():
            rows.extend(chunk.rows())
        rows.sort(key=self.key, reverse=self.descending)
        width = len(self.schema)
        for start in range(0, len(rows), CHUNK_SIZE):
            yield Chunk.from_rows(rows[start:start + CHUNK_SIZE], width)


class TopK(Operator):
    """Sort + limit fused (bounded memory)."""

    def __init__(self, child: Operator, key: Callable[[tuple], Any],
                 k: int, descending: bool = False) -> None:
        super().__init__(child.schema, f"top{k}")
        self.child = child
        self.children = [child]
        self.key = key
        self.k = k
        self.descending = descending

    def _select(self, rows: Iterable[tuple]) -> list[tuple]:
        import heapq

        if self.descending:
            return heapq.nsmallest(self.k, rows,
                                   key=lambda r: _neg(self.key(r)))
        return heapq.nsmallest(self.k, rows, key=self.key)

    def _produce(self) -> Iterator[tuple]:
        yield from self._select(self.child)

    def _produce_chunks(self) -> Iterator[Chunk]:
        rows: list[tuple] = []
        for chunk in self.child.chunks():
            rows.extend(chunk.rows())
        yield Chunk.from_rows(self._select(rows), len(self.schema))


def _neg(key):
    """Negate a sort key for descending heapq selection."""
    if isinstance(key, tuple):
        return tuple(_neg(part) for part in key)
    if isinstance(key, (int, float)):
        return -key
    raise EngineError(f"cannot order descending on {type(key)}")


class Limit(Operator):
    """First ``k`` rows of the input."""

    def __init__(self, child: Operator, k: int) -> None:
        super().__init__(child.schema, f"limit({k})")
        self.child = child
        self.children = [child]
        self.k = k

    def _produce(self) -> Iterator[tuple]:
        for i, row in enumerate(self.child):
            if i >= self.k:
                return
            yield row

    def _produce_chunks(self) -> Iterator[Chunk]:
        remaining = self.k
        if remaining <= 0:
            return
        for chunk in self.child.chunks():
            size = len(chunk)
            if size <= remaining:
                yield chunk
                remaining -= size
                if remaining == 0:
                    return
            else:
                yield Chunk([column[:remaining]
                             for column in chunk.columns])
                return


class Distinct(Operator):
    """Duplicate elimination (hash-based)."""

    def __init__(self, child: Operator) -> None:
        super().__init__(child.schema, "distinct")
        self.child = child
        self.children = [child]

    def _produce(self) -> Iterator[tuple]:
        seen: set[tuple] = set()
        for row in self.child:
            if row not in seen:
                seen.add(row)
                yield row

    def _produce_chunks(self) -> Iterator[Chunk]:
        seen: set[tuple] = set()
        width = len(self.schema)
        for chunk in self.child.chunks():
            fresh: list[tuple] = []
            for row in chunk.rows():
                if row not in seen:
                    seen.add(row)
                    fresh.append(row)
            if len(fresh) == len(chunk):
                yield chunk
            elif fresh:
                yield Chunk.from_rows(fresh, width)


class GroupAggregate(Operator):
    """Hash group-by with count/sum/min/max aggregates.

    ``aggregates`` maps output column name to ``(kind, input column)``
    where kind is one of ``count``, ``sum``, ``min``, ``max``.
    """

    def __init__(self, child: Operator, group_by: list[str],
                 aggregates: dict[str, tuple[str, str | None]]) -> None:
        schema = Schema(list(group_by) + list(aggregates))
        super().__init__(schema, f"groupby({','.join(group_by)})")
        self.child = child
        self.children = [child]
        self.group_positions = [child.schema.position(c) for c in group_by]
        self.aggregates = [
            (kind, child.schema.position(column)
             if column is not None else None)
            for kind, column in aggregates.values()]

    def _accumulate(self, groups: dict, key: tuple, row: tuple) -> None:
        state = groups.get(key)
        if state is None:
            state = groups[key] = [None] * len(self.aggregates)
        for i, (kind, position) in enumerate(self.aggregates):
            value = row[position] if position is not None else 1
            current = state[i]
            if kind == "count":
                state[i] = (current or 0) + 1
            elif kind == "sum":
                state[i] = (current or 0) + value
            elif kind == "min":
                state[i] = value if current is None \
                    else min(current, value)
            elif kind == "max":
                state[i] = value if current is None \
                    else max(current, value)
            else:
                raise EngineError(f"unknown aggregate {kind}")

    def _produce(self) -> Iterator[tuple]:
        groups: dict[tuple, list] = {}
        for row in self.child:
            key = tuple(row[p] for p in self.group_positions)
            self._accumulate(groups, key, row)
        for key, state in groups.items():
            yield key + tuple(state)

    def _produce_chunks(self) -> Iterator[Chunk]:
        count_only = all(kind == "count"
                         for kind, _ in self.aggregates)
        groups: dict[tuple, list] = {}
        counts: dict[tuple, int] = {}
        for chunk in self.child.chunks():
            key_columns = [chunk.columns[p]
                           for p in self.group_positions]
            keys = zip(*key_columns) if len(key_columns) > 1 \
                else zip(key_columns[0])
            if count_only:
                # Pure count group-by collapses to a Counter update —
                # one C-level pass per chunk, no per-row state lists.
                counter = Counter(keys)
                for key, count in counter.items():
                    counts[key] = counts.get(key, 0) + count
            else:
                for key, row in zip(keys, chunk.rows()):
                    self._accumulate(groups, key, row)
        width = len(self.schema)
        if count_only:
            n_aggs = len(self.aggregates)
            rows = [key + (count,) * n_aggs
                    for key, count in counts.items()]
        else:
            rows = [key + tuple(state)
                    for key, state in groups.items()]
        for start in range(0, len(rows), CHUNK_SIZE):
            yield Chunk.from_rows(rows[start:start + CHUNK_SIZE], width)


class Union(Operator):
    """Bag union of same-schema inputs."""

    def __init__(self, inputs: list[Operator]) -> None:
        if not inputs:
            raise EngineError("union of nothing")
        super().__init__(inputs[0].schema, "union")
        self.inputs = inputs
        self.children = list(inputs)

    def _produce(self) -> Iterator[tuple]:
        for child in self.inputs:
            yield from child

    def _produce_chunks(self) -> Iterator[Chunk]:
        for child in self.inputs:
            yield from child.chunks()


class TransitiveExpand(Operator):
    """Bounded-depth BFS over a two-column edge table.

    The "vendor-specific extension to SQL" (paper §1: Virtuoso introduces
    "shortcuts for recursive SQL subqueries to run specific graph
    algorithms inside SQL queries").  Output schema: ``(node, distance)``
    for 1 ≤ distance ≤ max_depth, excluding the source.

    Vectorized execution expands whole BFS frontiers against the packed
    CSR adjacency (one slice-and-extend per frontier node, one set
    difference per level) and emits one chunk per level — so a consumer
    that stops early (Q13's shortest path) abandons the BFS at a level
    boundary.
    """

    def __init__(self, edges: Table, source: Any, max_depth: int,
                 from_column: str = "person1_id",
                 to_column: str = "person2_id") -> None:
        super().__init__(Schema(("node", "distance")),
                         f"transitive({edges.name},d≤{max_depth})")
        self.edges = edges
        self.source = source
        self.max_depth = max_depth
        self.from_column = from_column
        self.to_column = to_column

    def _produce(self) -> Iterator[tuple]:
        to_position = self.edges.schema.position(self.to_column)
        seen = {self.source}
        frontier = [self.source]
        for depth in range(1, self.max_depth + 1):
            next_frontier = []
            for node in frontier:
                for row in self.edges.probe(self.from_column, node):
                    neighbor = row[to_position]
                    if neighbor not in seen:
                        seen.add(neighbor)
                        next_frontier.append(neighbor)
                        yield neighbor, depth
            frontier = next_frontier
            if not frontier:
                return

    def _produce_chunks(self) -> Iterator[Chunk]:
        csr = self.edges.csr(self.from_column, self.to_column)
        for frontier, depth in csr.frontier_bfs(self.source,
                                                self.max_depth):
            yield Chunk([frontier, [depth] * len(frontier)])


def collect_cardinalities(root: Operator) -> dict[str, int]:
    """Post-execution ``label → tuples_out`` over the whole plan tree."""
    result: dict[str, int] = {}

    def visit(op: Operator) -> None:
        result[op.label] = op.tuples_out
        for child in op.children:
            visit(child)

    visit(root)
    return result
