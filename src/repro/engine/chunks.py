"""Columnar chunk format and the engine execution-mode switch.

The vectorized engine moves batches of ``CHUNK_SIZE`` rows between
operators as *chunks*: parallel column arrays (plain Python lists /
tuples), so per-operator work is bulk list comprehensions, ``zip``
transposes and set operations — all C-level loops — instead of one
Python-level generator hop per row per operator.

Two execution modes share the same operator tree and produce identical
results:

* ``vectorized`` (default) — operators exchange :class:`Chunk` batches;
* ``tuple`` — the original volcano ``__next__`` path, kept for the
  tuple-vs-vectorized A/B bench and as the semantics reference.

The mode is a process-global (the engine is single-threaded per
process); ``engine_mode`` is the context-manager form used by tests and
the A/B bench.  ``REPRO_ENGINE_MODE`` selects the startup default so CI
can smoke both paths without code changes.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterable, Iterator, Sequence

from ..errors import EngineError

#: Rows per chunk.  Large enough to amortize per-chunk overhead, small
#: enough that gather buffers stay cache-friendly.
CHUNK_SIZE = 1024

TUPLE = "tuple"
VECTORIZED = "vectorized"
_MODES = (TUPLE, VECTORIZED)

_mode = os.environ.get("REPRO_ENGINE_MODE", VECTORIZED)
if _mode not in _MODES:
    _mode = VECTORIZED


def execution_mode() -> str:
    """The currently active engine execution mode."""
    return _mode


def set_execution_mode(mode: str) -> str:
    """Set the mode; returns the previous one (for restore)."""
    global _mode
    if mode not in _MODES:
        raise EngineError(
            f"unknown engine mode {mode!r}; expected one of {_MODES}")
    previous = _mode
    _mode = mode
    return previous


@contextmanager
def engine_mode(mode: str):
    """Temporarily switch execution mode (A/B benches, tests)."""
    previous = set_execution_mode(mode)
    try:
        yield
    finally:
        set_execution_mode(previous)


class Chunk:
    """A batch of rows as parallel column arrays.

    ``columns[i][j]`` is column *i* of row *j*.  Columns may be lists or
    tuples; producers that build fresh columns use lists, transposes of
    existing row tuples stay tuples — consumers only index and iterate.
    """

    __slots__ = ("columns",)

    def __init__(self, columns: Sequence[Sequence]) -> None:
        self.columns = columns

    def __len__(self) -> int:
        return len(self.columns[0]) if self.columns else 0

    def rows(self) -> Iterator[tuple]:
        """Row-tuple view (one ``zip`` transpose, C-level)."""
        return zip(*self.columns)

    def gather(self, indices: Sequence[int]) -> "Chunk":
        """New chunk keeping ``indices`` rows in the given order."""
        return Chunk([list(map(column.__getitem__, indices))
                      for column in self.columns])

    @classmethod
    def from_rows(cls, rows: Iterable[tuple], width: int) -> "Chunk":
        """Transpose row tuples into a chunk (empty input → empty)."""
        columns = list(zip(*rows))
        if not columns:
            columns = [() for _ in range(width)]
        return cls(columns)


def chunk_rows(rows: Sequence[tuple], width: int,
               size: int = CHUNK_SIZE) -> Iterator[Chunk]:
    """Slice a materialized row list into chunks."""
    for start in range(0, len(rows), size):
        yield Chunk.from_rows(rows[start:start + size], width)
