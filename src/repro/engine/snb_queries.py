"""SNB-Interactive queries as explicit relational plans (the Virtuoso SUT).

The paper's Virtuoso runs used "SQL with vendor-specific extensions for
graph algorithms" and explicit plans; accordingly every query here is a
hand-built composition of :mod:`repro.engine.operators` (with
:class:`~repro.engine.operators.TransitiveExpand` playing the transitive
SQL extension), and the Figure 4 showcases (Q2, Q9) go through the
cost-based :class:`~repro.engine.optimizer.Optimizer`.

All functions return the *same result dataclasses* as the graph-store
implementations in :mod:`repro.queries`, so the test suite can assert the
two systems under test agree answer-for-answer.
"""

from __future__ import annotations

from ..ids import EntityKind, is_kind
from ..queries.complex_reads import (
    q1 as g1,
    q2 as g2,
    q3 as g3,
    q4 as g4,
    q5 as g5,
    q6 as g6,
    q7 as g7,
    q8 as g8,
    q9 as g9,
    q10 as g10,
    q11 as g11,
    q12 as g12,
    q13 as g13,
    q14 as g14,
)
from ..queries import short_reads as gs
from ..sim_time import MILLIS_PER_MINUTE
from .catalog import Catalog
from .operators import TransitiveExpand
from .optimizer import JoinSpec, JoinStep, Optimizer, PlannedPipeline


# ---------------------------------------------------------------------------
# shared relational helpers
# ---------------------------------------------------------------------------

def friend_ids(catalog: Catalog, person_id: int) -> list[int]:
    return [row[1] for row in catalog.table("knows").probe("person1_id",
                                                           person_id)]


def circle(catalog: Catalog, person_id: int, depth: int) -> dict[int, int]:
    """person id → distance for 1..depth hops (TransitiveExpand)."""
    expand = TransitiveExpand(catalog.table("knows"), person_id, depth)
    return {node: distance for node, distance in expand}


def _person(catalog: Catalog, person_id: int) -> tuple:
    return catalog.table("person").by_pk(person_id)


def _messages_by(catalog: Catalog, person_id: int) -> list[tuple]:
    return catalog.table("message").probe("creator_id", person_id)


def _message_content(row: tuple) -> str:
    return row[4]


def _tag_name(catalog: Catalog, tag_id: int) -> str:
    return catalog.table("tag").by_pk(tag_id)[1]


def _message_tags(catalog: Catalog, message_id: int) -> set[int]:
    return {row[1] for row in catalog.table("message_tag").probe(
        "message_id", message_id)}


# ---------------------------------------------------------------------------
# the 14 complex reads
# ---------------------------------------------------------------------------

def q1(catalog: Catalog, params: g1.Q1Params) -> list[g1.Q1Result]:
    """Q1 via transitive expansion + first-name index intersection."""
    distances = circle(catalog, params.person_id, g1.MAX_DISTANCE)
    name_matches = catalog.table("person").probe("first_name",
                                                 params.first_name)
    rows = []
    for person in name_matches:
        distance = distances.get(person[0])
        if distance is None:
            continue
        rows.append((distance, person[2], person[0], person))
    rows.sort(key=lambda r: r[:3])
    results = []
    for distance, last_name, person_id, person in rows[:g1.LIMIT]:
        city = catalog.table("place").by_pk(person[6])
        universities = tuple(sorted(
            (catalog.table("organisation").by_pk(s[1])[1], s[2],
             catalog.table("place").by_pk(
                 catalog.table("organisation").by_pk(s[1])[3])[1])
            for s in catalog.table("study_at").probe("person_id",
                                                     person_id)))
        companies = tuple(sorted(
            (catalog.table("organisation").by_pk(w[1])[1], w[2],
             catalog.table("place").by_pk(
                 catalog.table("organisation").by_pk(w[1])[3])[1])
            for w in catalog.table("work_at").probe("person_id",
                                                    person_id)))
        emails = tuple(row[2] for row in sorted(
            catalog.table("person_email").probe("person_id", person_id),
            key=lambda row: row[1]))
        languages = tuple(row[2] for row in sorted(
            catalog.table("person_language").probe("person_id",
                                                   person_id),
            key=lambda row: row[1]))
        results.append(g1.Q1Result(
            person_id=person_id, last_name=last_name, distance=distance,
            birthday=person[4], creation_date=person[5],
            gender=person[3], browser_used=person[8],
            location_ip=person[9], emails=emails, languages=languages,
            city_name=city[1], universities=universities,
            companies=companies))
    return results


def q2_pipeline(catalog: Catalog, params: g2.Q2Params,
                force: dict[int, str] | None = None) -> PlannedPipeline:
    """The optimizer-planned pipeline for Q2 (knows ⨝ message)."""
    force = force or {}
    spec = JoinSpec(
        source_table="knows",
        source_keys=[params.person_id],
        source_column="person1_id",
        steps=[
            JoinStep("message", outer_key="person2_id",
                     inner_column="creator_id",
                     residual=_date_filter_factory(3, params.max_date),
                     selectivity=0.5, force=force.get(0)),
        ])
    # Forced pipelines must not poison (or be served by) the plan cache.
    return Optimizer(catalog).plan(spec,
                                   query_id=None if force else 2)


def _date_filter_factory(position_hint: int, max_date: int):
    def predicate(row: tuple) -> bool:
        # The message creation_date lands after the knows columns
        # (3 columns) at offset 3 + 3.
        return row[6] <= max_date

    return predicate


def q2(catalog: Catalog, params: g2.Q2Params) -> list[g2.Q2Result]:
    pipeline = q2_pipeline(catalog, params)
    rows = pipeline.execute()
    # Joined row: knows(person1,person2,date) ++ message columns.
    rows.sort(key=lambda r: (-r[6], r[3 + 0]))
    results = []
    for row in rows[:g2.LIMIT]:
        friend = _person(catalog, row[1])
        results.append(g2.Q2Result(
            person_id=row[1], first_name=friend[1], last_name=friend[2],
            message_id=row[3], content=_message_content(row[3:]),
            creation_date=row[6], is_post=row[11]))
    return results


def q3(catalog: Catalog, params: g3.Q3Params) -> list[g3.Q3Result]:
    rows = []
    for person_id in circle(catalog, params.person_id, 2):
        person = _person(catalog, person_id)
        if person[7] in (params.country_x_id, params.country_y_id):
            continue
        x_count = y_count = 0
        for message in _messages_by(catalog, person_id):
            if not params.start_date <= message[3] < params.end_date:
                continue
            if message[7] == params.country_x_id:
                x_count += 1
            elif message[7] == params.country_y_id:
                y_count += 1
        if x_count and y_count:
            rows.append(g3.Q3Result(person_id, person[1], person[2],
                                    x_count, y_count))
    rows.sort(key=lambda r: (-(r.x_count + r.y_count), r.person_id))
    return rows[:g3.LIMIT]


def q4(catalog: Catalog, params: g4.Q4Params) -> list[g4.Q4Result]:
    in_window: dict[int, int] = {}
    before: set[int] = set()
    for friend_id in friend_ids(catalog, params.person_id):
        for message in _messages_by(catalog, friend_id):
            if not message[8]:  # posts only
                continue
            when = message[3]
            if when >= params.end_date:
                continue
            tags = _message_tags(catalog, message[0])
            if when < params.start_date:
                before |= tags
            else:
                for tag_id in tags:
                    in_window[tag_id] = in_window.get(tag_id, 0) + 1
    rows = [g4.Q4Result(_tag_name(catalog, tag_id), count)
            for tag_id, count in in_window.items() if tag_id not in before]
    rows.sort(key=lambda r: (-r.post_count, r.tag_name))
    return rows[:g4.LIMIT]


def q5_pipeline(catalog: Catalog, params: g5.Q5Params,
                force: dict[int, str] | None = None) -> PlannedPipeline:
    """Optimizer-planned pipeline for Q5's expansion legs.

    knows ⨝ knows ⨝ membership (joined after the date) — the
    friends-of-friends leg of the intended plan (Fig. 6a), feeding the
    forum/post aggregation that :func:`q5` performs.
    """
    force = force or {}
    min_date = params.min_date

    def joined_after(row: tuple) -> bool:
        # knows ++ knows ++ membership: joined_date at offset 8.
        return row[8] > min_date

    spec = JoinSpec(
        source_table="knows",
        source_keys=[params.person_id],
        source_column="person1_id",
        steps=[
            JoinStep("knows", outer_key="person2_id",
                     inner_column="person1_id", repeat_expansion=True,
                     force=force.get(0)),
            JoinStep("membership", outer_key="inner_person2_id",
                     inner_column="person_id", residual=joined_after,
                     selectivity=0.3, force=force.get(1)),
        ])
    return Optimizer(catalog).plan(spec,
                                   query_id=None if force else 5)


def q5(catalog: Catalog, params: g5.Q5Params) -> list[g5.Q5Result]:
    members = circle(catalog, params.person_id, 2)
    joined_forums: set[int] = set()
    membership = catalog.table("membership")
    for person_id in members:
        for row in membership.probe("person_id", person_id):
            if row[2] > params.min_date:
                joined_forums.add(row[0])
    message = catalog.table("message")
    rows = []
    for forum_id in joined_forums:
        count = sum(1 for post in message.probe("forum_id", forum_id)
                    if post[1] in members and post[8])
        forum = catalog.table("forum").by_pk(forum_id)
        rows.append(g5.Q5Result(forum_id, forum[1], count))
    rows.sort(key=lambda r: (-r.post_count, r.forum_id))
    return rows[:g5.LIMIT]


def q6(catalog: Catalog, params: g6.Q6Params) -> list[g6.Q6Result]:
    counts: dict[int, int] = {}
    for person_id in circle(catalog, params.person_id, 2):
        for message in _messages_by(catalog, person_id):
            if not message[8]:
                continue
            tags = _message_tags(catalog, message[0])
            if params.tag_id not in tags:
                continue
            for tag_id in tags:
                if tag_id != params.tag_id:
                    counts[tag_id] = counts.get(tag_id, 0) + 1
    rows = [g6.Q6Result(_tag_name(catalog, tag_id), count)
            for tag_id, count in counts.items()]
    rows.sort(key=lambda r: (-r.post_count, r.tag_name))
    return rows[:g6.LIMIT]


def q7(catalog: Catalog, params: g7.Q7Params) -> list[g7.Q7Result]:
    friends = set(friend_ids(catalog, params.person_id))
    likes = catalog.table("likes")
    latest: dict[int, tuple[int, int]] = {}
    for message in _messages_by(catalog, params.person_id):
        for like in likes.probe("message_id", message[0]):
            entry = (like[2], message[0])
            if like[0] not in latest or entry > latest[like[0]]:
                latest[like[0]] = entry
    rows = []
    for liker_id, (like_date, message_id) in latest.items():
        liker = _person(catalog, liker_id)
        message = catalog.table("message").by_pk(message_id)
        rows.append(g7.Q7Result(
            liker_id=liker_id, first_name=liker[1], last_name=liker[2],
            like_date=like_date, message_id=message_id,
            message_content=_message_content(message),
            latency_minutes=(like_date - message[3]) // MILLIS_PER_MINUTE,
            is_outside_connections=liker_id not in friends))
    rows.sort(key=lambda r: (-r.like_date, r.liker_id))
    return rows[:g7.LIMIT]


def q8(catalog: Catalog, params: g8.Q8Params) -> list[g8.Q8Result]:
    message = catalog.table("message")
    candidates = []
    for mine in _messages_by(catalog, params.person_id):
        for reply in message.probe("reply_of_id", mine[0]):
            candidates.append((-reply[3], reply[0], reply))
    candidates.sort(key=lambda r: r[:2])
    results = []
    for neg_date, comment_id, reply in candidates[:g8.LIMIT]:
        author = _person(catalog, reply[1])
        results.append(g8.Q8Result(
            comment_id=comment_id, creation_date=-neg_date,
            content=reply[4], author_id=reply[1],
            first_name=author[1], last_name=author[2]))
    return results


def q9_pipeline(catalog: Catalog, params: g9.Q9Params,
                force: dict[int, str] | None = None) -> PlannedPipeline:
    """The Figure 4 pipeline: knows ⨝ knows ⨝ message.

    This is the voluminous friends-of-friends leg of the intended plan's
    union (the leg whose join types the paper's choke-point analysis is
    about).  The intended plan uses INL for both friendship expansions
    and (at paper scale) a hash join for the message join; ``force``
    lets the bench pin any step to ``"inl"`` or ``"hash"`` to measure
    the penalty of a wrong choice.  The production :func:`q9` expands
    the full 1∪2-hop circle.
    """
    force = force or {}
    max_date = params.max_date

    def date_filter(row: tuple) -> bool:
        # knows ++ knows ++ message: message creation_date at offset 9.
        return row[9] < max_date

    spec = JoinSpec(
        source_table="knows",
        source_keys=[params.person_id],
        source_column="person1_id",
        steps=[
            JoinStep("knows", outer_key="person2_id",
                     inner_column="person1_id", repeat_expansion=True,
                     force=force.get(0)),
            JoinStep("message", outer_key="inner_person2_id",
                     inner_column="creator_id", residual=date_filter,
                     selectivity=0.5, force=force.get(1)),
        ])
    return Optimizer(catalog).plan(spec,
                                   query_id=None if force else 9)


def q9(catalog: Catalog, params: g9.Q9Params) -> list[g9.Q9Result]:
    members = circle(catalog, params.person_id, 2)
    message = catalog.table("message")
    candidates = []
    for person_id in members:
        for row in message.probe("creator_id", person_id):
            if row[3] < params.max_date:
                candidates.append((-row[3], row[0], row))
    candidates.sort(key=lambda r: r[:2])
    results = []
    for neg_date, message_id, row in candidates[:g9.LIMIT]:
        author = _person(catalog, row[1])
        results.append(g9.Q9Result(
            person_id=row[1], first_name=author[1], last_name=author[2],
            message_id=message_id, content=_message_content(row),
            creation_date=-neg_date, is_post=row[8]))
    return results


def q9_time_index_variant(catalog: Catalog, params: g9.Q9Params,
                          ) -> list[g9.Q9Result]:
    """Q9 exploiting time-ordered message ids (paper §3's last point).

    "The system may choose to assign identifiers to Posts/Comments
    entities such that their IDs are increasing in time ... the final
    selection of Posts/Comments created before a certain date will have
    high locality.  Moreover, it will eliminate the need for sorting at
    the end."

    Instead of expanding the circle and sorting its messages, this
    variant walks the creation-date ordered index *descending* from the
    date bound and keeps the first 20 messages whose creator is in the
    2-hop circle — no sort, and it touches only the newest sliver of
    the message table.
    """
    members = circle(catalog, params.person_id, 2)
    message = catalog.table("message")
    results: list[g9.Q9Result] = []
    pending: list[tuple] = []
    last_date: int | None = None
    for row in message.range_scan(high=params.max_date - 1,
                                  reverse=True):
        if last_date is not None and row[3] != last_date \
                and len(results) + len(pending) >= g9.LIMIT:
            break
        if row[3] != last_date:
            # Flush the previous date group in id order (the required
            # tie-break), then start a new group.
            pending.sort(key=lambda r: r[0])
            results.extend(_q9_rows(catalog, pending))
            pending = []
            last_date = row[3]
        if row[1] in members:
            pending.append(row)
    pending.sort(key=lambda r: r[0])
    results.extend(_q9_rows(catalog, pending))
    return results[:g9.LIMIT]


def _q9_rows(catalog: Catalog, rows: list[tuple]) -> list[g9.Q9Result]:
    out = []
    for row in rows:
        author = _person(catalog, row[1])
        out.append(g9.Q9Result(
            person_id=row[1], first_name=author[1], last_name=author[2],
            message_id=row[0], content=_message_content(row),
            creation_date=row[3], is_post=row[8]))
    return out


def q10(catalog: Catalog, params: g10.Q10Params) -> list[g10.Q10Result]:
    interests = {row[1] for row in catalog.table("person_tag").probe(
        "person_id", params.person_id)}
    friends = set(friend_ids(catalog, params.person_id))
    candidates = {fof for friend in friends
                  for fof in friend_ids(catalog, friend)
                  if fof != params.person_id and fof not in friends}
    rows = []
    for candidate in candidates:
        person = _person(catalog, candidate)
        if not g10._in_horoscope_window(person[4], params.month):
            continue
        common = uncommon = 0
        for message in _messages_by(catalog, candidate):
            if not message[8]:
                continue
            if _message_tags(catalog, message[0]) & interests:
                common += 1
            else:
                uncommon += 1
        city = catalog.table("place").by_pk(person[6])
        rows.append(g10.Q10Result(
            person_id=candidate, first_name=person[1],
            last_name=person[2], similarity=common - uncommon,
            gender=person[3], city_name=city[1]))
    rows.sort(key=lambda r: (-r.similarity, r.person_id))
    return rows[:g10.LIMIT]


def q11(catalog: Catalog, params: g11.Q11Params) -> list[g11.Q11Result]:
    rows = []
    for person_id in circle(catalog, params.person_id, 2):
        for work in catalog.table("work_at").probe("person_id",
                                                   person_id):
            if work[2] >= params.max_work_from:
                continue
            org = catalog.table("organisation").by_pk(work[1])
            if org[3] != params.country_id:
                continue
            person = _person(catalog, person_id)
            rows.append(g11.Q11Result(
                person_id=person_id, first_name=person[1],
                last_name=person[2], organisation_name=org[1],
                work_from=work[2]))
    rows.sort(key=lambda r: (r.work_from, r.person_id,
                             r.organisation_name))
    return rows[:g11.LIMIT]


def q12(catalog: Catalog, params: g12.Q12Params) -> list[g12.Q12Result]:
    tagclass = catalog.table("tagclass")
    wanted = {params.tag_class_id}
    changed = True
    while changed:
        changed = False
        for row in tagclass.rows:
            if row[2] in wanted and row[0] not in wanted:
                wanted.add(row[0])
                changed = True
    message = catalog.table("message")
    rows = []
    for friend_id in friend_ids(catalog, params.person_id):
        reply_count = 0
        tag_ids: set[int] = set()
        for reply in message.probe("creator_id", friend_id):
            if reply[8]:
                continue  # comments only
            parent_id = reply[10]
            if not is_kind(parent_id, EntityKind.POST):
                continue
            matching = {tag_id
                        for tag_id in _message_tags(catalog, parent_id)
                        if catalog.table("tag").by_pk(tag_id)[2]
                        in wanted}
            if matching:
                reply_count += 1
                tag_ids |= matching
        if reply_count:
            person = _person(catalog, friend_id)
            rows.append(g12.Q12Result(
                person_id=friend_id, first_name=person[1],
                last_name=person[2], reply_count=reply_count,
                tag_names=tuple(sorted(_tag_name(catalog, t)
                                       for t in tag_ids))))
    rows.sort(key=lambda r: (-r.reply_count, r.person_id))
    return rows[:g12.LIMIT]


def q13(catalog: Catalog, params: g13.Q13Params) -> list[g13.Q13Result]:
    if params.person_x_id == params.person_y_id:
        return [g13.Q13Result(0)]
    # Level-synchronized BFS via the transitive extension.
    expand = TransitiveExpand(catalog.table("knows"), params.person_x_id,
                              max_depth=1 << 30)
    for node, distance in expand:
        if node == params.person_y_id:
            return [g13.Q13Result(distance)]
    return [g13.Q13Result(-1)]


def q14(catalog: Catalog, params: g14.Q14Params) -> list[g14.Q14Result]:
    source, target = params.person_x_id, params.person_y_id
    if source == target:
        return [g14.Q14Result((source,), 0.0)]
    distances = {source: 0}
    frontier = [source]
    found = None
    while frontier and found is None:
        next_frontier = []
        for node in frontier:
            for neighbor in friend_ids(catalog, node):
                if neighbor not in distances:
                    distances[neighbor] = distances[node] + 1
                    next_frontier.append(neighbor)
                    if neighbor == target:
                        found = distances[neighbor]
        frontier = next_frontier
    if found is None:
        return []
    paths: list[list[int]] = []
    stack = [[target]]
    while stack and len(paths) < g14.MAX_PATHS:
        partial = stack.pop()
        head = partial[-1]
        if head == source:
            paths.append(list(reversed(partial)))
            continue
        want = distances[head] - 1
        for neighbor in friend_ids(catalog, head):
            if distances.get(neighbor) == want:
                stack.append(partial + [neighbor])
    message = catalog.table("message")
    cache: dict[tuple[int, int], float] = {}

    def pair_weight(a: int, b: int) -> float:
        key = (min(a, b), max(a, b))
        if key in cache:
            return cache[key]
        weight = 0.0
        for replier, author in ((a, b), (b, a)):
            for reply in message.probe("creator_id", replier):
                if reply[8]:
                    continue
                parent = message.get_pk(reply[10])
                if parent is None or parent[1] != author:
                    continue
                weight += 1.0 if parent[8] else 0.5
        cache[key] = weight
        return weight

    results = [g14.Q14Result(tuple(path),
                             sum(pair_weight(a, b)
                                 for a, b in zip(path, path[1:])))
               for path in paths]
    results.sort(key=lambda r: (-r.weight, r.path))
    return results


#: query id → engine implementation.
ENGINE_COMPLEX = {
    1: q1, 2: q2, 3: q3, 4: q4, 5: q5, 6: q6, 7: q7, 8: q8, 9: q9,
    10: q10, 11: q11, 12: q12, 13: q13, 14: q14,
}


# ---------------------------------------------------------------------------
# the 7 short reads
# ---------------------------------------------------------------------------

def s1(catalog: Catalog, person_id: int) -> gs.S1Result | None:
    row = catalog.table("person").get_pk(person_id)
    if row is None:
        return None
    return gs.S1Result(row[1], row[2], row[4], row[9], row[8], row[6],
                       row[3], row[5])


def s2(catalog: Catalog, person_id: int, limit: int = 10,
       ) -> list[gs.S2Result]:
    mine = sorted(_messages_by(catalog, person_id),
                  key=lambda r: (-r[3], r[0]))[:limit]
    results = []
    for row in mine:
        root_id = row[0] if row[8] else row[9]
        root = catalog.table("message").by_pk(root_id)
        author = _person(catalog, root[1])
        results.append(gs.S2Result(
            message_id=row[0], content=_message_content(row),
            creation_date=row[3], root_post_id=root_id,
            root_author_id=root[1], root_author_first_name=author[1],
            root_author_last_name=author[2]))
    return results


def s3(catalog: Catalog, person_id: int) -> list[gs.S3Result]:
    rows = []
    for edge in catalog.table("knows").probe("person1_id", person_id):
        friend = _person(catalog, edge[1])
        rows.append(gs.S3Result(edge[1], friend[1], friend[2], edge[2]))
    rows.sort(key=lambda r: (-r.friendship_date, r.person_id))
    return rows


def s4(catalog: Catalog, message_id: int) -> gs.S4Result | None:
    row = catalog.table("message").get_pk(message_id)
    if row is None:
        return None
    return gs.S4Result(row[3], _message_content(row))


def s5(catalog: Catalog, message_id: int) -> gs.S5Result | None:
    row = catalog.table("message").get_pk(message_id)
    if row is None:
        return None
    author = _person(catalog, row[1])
    return gs.S5Result(row[1], author[1], author[2])


def s6(catalog: Catalog, message_id: int) -> gs.S6Result | None:
    row = catalog.table("message").get_pk(message_id)
    if row is None:
        return None
    forum_id = row[2] if row[8] else None
    if forum_id is None:
        root = catalog.table("message").get_pk(row[9])
        if root is None:
            return None
        forum_id = root[2]
    forum = catalog.table("forum").by_pk(forum_id)
    moderator = _person(catalog, forum[3])
    return gs.S6Result(forum_id, forum[1], forum[3], moderator[1],
                       moderator[2])


def s7(catalog: Catalog, message_id: int) -> list[gs.S7Result]:
    row = catalog.table("message").get_pk(message_id)
    if row is None:
        return []
    author_friends = set(friend_ids(catalog, row[1]))
    rows = []
    for reply in catalog.table("message").probe("reply_of_id",
                                                message_id):
        author = _person(catalog, reply[1])
        rows.append(gs.S7Result(
            comment_id=reply[0], content=reply[4],
            creation_date=reply[3], author_id=reply[1],
            author_first_name=author[1], author_last_name=author[2],
            knows_original_author=reply[1] in author_friends))
    rows.sort(key=lambda r: (-r.creation_date, r.author_id))
    return rows


ENGINE_SHORT = {1: s1, 2: s2, 3: s3, 4: s4, 5: s5, 6: s6, 7: s7}


# ---------------------------------------------------------------------------
# the 8 updates
# ---------------------------------------------------------------------------

def execute_engine_update(catalog: Catalog, operation) -> None:
    """Apply one update-stream operation to the relational catalog."""
    from ..datagen.update_stream import UpdateKind

    kind = operation.kind
    payload = operation.payload
    if kind is UpdateKind.ADD_PERSON:
        catalog.insert_person(payload)
    elif kind is UpdateKind.ADD_FRIENDSHIP:
        catalog.insert_friendship(payload)
    elif kind is UpdateKind.ADD_FORUM:
        catalog.insert_forum(payload)
    elif kind is UpdateKind.ADD_FORUM_MEMBERSHIP:
        catalog.insert_membership(payload)
    elif kind is UpdateKind.ADD_POST:
        catalog.insert_post(payload)
    elif kind is UpdateKind.ADD_COMMENT:
        catalog.insert_comment(payload)
    else:
        catalog.insert_like(payload)
