"""SNB-Interactive queries as explicit relational plans (the Virtuoso SUT).

The paper's Virtuoso runs used "SQL with vendor-specific extensions for
graph algorithms" and explicit plans; accordingly every complex read is
a linear join pipeline planned by the cost-based
:class:`~repro.engine.optimizer.Optimizer` (with
:class:`~repro.engine.operators.TransitiveExpand` playing the transitive
SQL extension as the pipeline source for the circle-shaped queries),
followed by a thin column-wise finishing pass (sort/limit/enrichment).

``PIPELINES`` maps every query id 1–14 to its plan builder, so the
Figure 4 bench and the plan-cache tests cover the full read mix.  The
Fig. 4 *leg* pipelines (:func:`q5_pipeline`, :func:`q9_pipeline` — the
knows ⨝ knows ⨝ … shapes the paper's choke-point analysis dissects) are
kept verbatim and cached under their own ``"5.leg"``/``"9.leg"`` ids;
the production queries use the circle-sourced plans cached under the
integer ids.

All functions return the *same result dataclasses* as the graph-store
implementations in :mod:`repro.queries`, so the test suite can assert the
two systems under test agree answer-for-answer.
"""

from __future__ import annotations

from ..ids import EntityKind, is_kind
from ..queries.complex_reads import (
    q1 as g1,
    q2 as g2,
    q3 as g3,
    q4 as g4,
    q5 as g5,
    q6 as g6,
    q7 as g7,
    q8 as g8,
    q9 as g9,
    q10 as g10,
    q11 as g11,
    q12 as g12,
    q13 as g13,
    q14 as g14,
)
from ..queries import short_reads as gs
from ..sim_time import MILLIS_PER_MINUTE
from .catalog import Catalog
from .chunks import VECTORIZED, execution_mode
from .operators import TransitiveExpand
from .optimizer import (
    ExpandSource,
    JoinSpec,
    JoinStep,
    Optimizer,
    PlannedPipeline,
)
from .predicates import All, Compare, InSet, Where


# ---------------------------------------------------------------------------
# shared relational helpers
# ---------------------------------------------------------------------------

def friend_ids(catalog: Catalog, person_id: int) -> list[int]:
    return [row[1] for row in catalog.table("knows").probe("person1_id",
                                                           person_id)]


def circle(catalog: Catalog, person_id: int, depth: int) -> dict[int, int]:
    """person id → distance for 1..depth hops (TransitiveExpand)."""
    expand = TransitiveExpand(catalog.table("knows"), person_id, depth)
    return {node: distance for node, distance in expand}


def _person(catalog: Catalog, person_id: int) -> tuple:
    return catalog.table("person").by_pk(person_id)


def _messages_by(catalog: Catalog, person_id: int) -> list[tuple]:
    return catalog.table("message").probe("creator_id", person_id)


def _message_content(row: tuple) -> str:
    return row[4]


def _tag_name(catalog: Catalog, tag_id: int) -> str:
    return catalog.table("tag").by_pk(tag_id)[1]


def _message_tags(catalog: Catalog, message_id: int) -> set[int]:
    return {row[1] for row in catalog.table("message_tag").probe(
        "message_id", message_id)}


def _columns(pipeline: PlannedPipeline):
    """Execute a pipeline and return ``(columns, position_fn)``."""
    return (pipeline.execute_columns(),
            pipeline.root.schema.position)


# ---------------------------------------------------------------------------
# the 14 complex reads — plan builders + finishing passes
# ---------------------------------------------------------------------------

def q1_plan(catalog: Catalog, params: g1.Q1Params,
            force: dict[int, str] | None = None) -> PlannedPipeline:
    """Q1: 3-hop circle expansion ⨝ person (pk), first-name residual."""
    force = force or {}
    spec = JoinSpec(
        source_expand=ExpandSource("knows", params.person_id,
                                   g1.MAX_DISTANCE),
        steps=[
            JoinStep("person", outer_key="node", inner_column=None,
                     residual=Compare("first_name", "eq",
                                      params.first_name),
                     selectivity=0.01, force=force.get(0)),
        ])
    return Optimizer(catalog).plan(spec,
                                   query_id=None if force else 1)


def q1(catalog: Catalog, params: g1.Q1Params) -> list[g1.Q1Result]:
    columns, position = _columns(q1_plan(catalog, params))
    records = sorted(zip(
        columns[position("distance")], columns[position("last_name")],
        columns[position("id")], columns[position("gender")],
        columns[position("birthday")],
        columns[position("creation_date")],
        columns[position("city_id")],
        columns[position("browser_used")],
        columns[position("location_ip")]),
        key=lambda r: r[:3])
    results = []
    for (distance, last_name, person_id, gender, birthday,
         creation_date, city_id, browser, ip) in records[:g1.LIMIT]:
        city = catalog.table("place").by_pk(city_id)
        universities = tuple(sorted(
            (catalog.table("organisation").by_pk(s[1])[1], s[2],
             catalog.table("place").by_pk(
                 catalog.table("organisation").by_pk(s[1])[3])[1])
            for s in catalog.table("study_at").probe("person_id",
                                                     person_id)))
        companies = tuple(sorted(
            (catalog.table("organisation").by_pk(w[1])[1], w[2],
             catalog.table("place").by_pk(
                 catalog.table("organisation").by_pk(w[1])[3])[1])
            for w in catalog.table("work_at").probe("person_id",
                                                    person_id)))
        emails = tuple(row[2] for row in sorted(
            catalog.table("person_email").probe("person_id", person_id),
            key=lambda row: row[1]))
        languages = tuple(row[2] for row in sorted(
            catalog.table("person_language").probe("person_id",
                                                   person_id),
            key=lambda row: row[1]))
        results.append(g1.Q1Result(
            person_id=person_id, last_name=last_name, distance=distance,
            birthday=birthday, creation_date=creation_date,
            gender=gender, browser_used=browser,
            location_ip=ip, emails=emails, languages=languages,
            city_name=city[1], universities=universities,
            companies=companies))
    return results


def q2_pipeline(catalog: Catalog, params: g2.Q2Params,
                force: dict[int, str] | None = None) -> PlannedPipeline:
    """The optimizer-planned pipeline for Q2 (knows ⨝ message)."""
    force = force or {}
    spec = JoinSpec(
        source_table="knows",
        source_keys=[params.person_id],
        source_column="person1_id",
        steps=[
            JoinStep("message", outer_key="person2_id",
                     inner_column="creator_id",
                     residual=Compare("inner_creation_date", "le",
                                      params.max_date),
                     selectivity=0.5, force=force.get(0)),
        ])
    # Forced pipelines must not poison (or be served by) the plan cache.
    return Optimizer(catalog).plan(spec,
                                   query_id=None if force else 2)


def q2(catalog: Catalog, params: g2.Q2Params) -> list[g2.Q2Result]:
    pipeline = q2_pipeline(catalog, params)
    rows = pipeline.execute()
    # Joined row: knows(person1,person2,date) ++ message columns.
    rows.sort(key=lambda r: (-r[6], r[3 + 0]))
    results = []
    for row in rows[:g2.LIMIT]:
        friend = _person(catalog, row[1])
        results.append(g2.Q2Result(
            person_id=row[1], first_name=friend[1], last_name=friend[2],
            message_id=row[3], content=_message_content(row[3:]),
            creation_date=row[6], is_post=row[11]))
    return results


def q3_plan(catalog: Catalog, params: g3.Q3Params,
            force: dict[int, str] | None = None) -> PlannedPipeline:
    """Q3: 2-hop circle ⨝ person (country residual) ⨝ message
    (date-window + x/y-country residual)."""
    force = force or {}
    optimizer = Optimizer(catalog)
    window = optimizer.estimator.date_selectivity(
        "message", "creation_date", params.start_date, params.end_date)
    countries = (params.country_x_id, params.country_y_id)
    spec = JoinSpec(
        source_expand=ExpandSource("knows", params.person_id, 2),
        steps=[
            JoinStep("person", outer_key="node", inner_column=None,
                     residual=InSet("country_id", countries,
                                    negate=True),
                     selectivity=0.9, force=force.get(0)),
            JoinStep("message", outer_key="node",
                     inner_column="creator_id",
                     residual=All(
                         Compare("inner_creation_date", "ge",
                                 params.start_date),
                         Compare("inner_creation_date", "lt",
                                 params.end_date),
                         InSet("inner_country_id", countries)),
                     selectivity=max(window, 0.01) * 0.2,
                     force=force.get(1)),
        ])
    return optimizer.plan(spec, query_id=None if force else 3)


def q3(catalog: Catalog, params: g3.Q3Params) -> list[g3.Q3Result]:
    columns, position = _columns(q3_plan(catalog, params))
    counts: dict[int, list[int]] = {}
    names: dict[int, tuple[str, str]] = {}
    for person_id, first_name, last_name, country in zip(
            columns[position("node")],
            columns[position("first_name")],
            columns[position("last_name")],
            columns[position("inner_country_id")]):
        state = counts.get(person_id)
        if state is None:
            state = counts[person_id] = [0, 0]
            names[person_id] = (first_name, last_name)
        if country == params.country_x_id:
            state[0] += 1
        else:
            state[1] += 1
    rows = [g3.Q3Result(person_id, names[person_id][0],
                        names[person_id][1], state[0], state[1])
            for person_id, state in counts.items()
            if state[0] and state[1]]
    rows.sort(key=lambda r: (-(r.x_count + r.y_count), r.person_id))
    return rows[:g3.LIMIT]


def q4_plan(catalog: Catalog, params: g4.Q4Params,
            force: dict[int, str] | None = None) -> PlannedPipeline:
    """Q4: friends ⨝ posts (date residual) ⨝ message_tag."""
    force = force or {}
    spec = JoinSpec(
        source_table="knows",
        source_keys=[params.person_id],
        source_column="person1_id",
        steps=[
            JoinStep("message", outer_key="person2_id",
                     inner_column="creator_id",
                     residual=All(
                         Compare("is_post", "eq", True),
                         Compare("inner_creation_date", "lt",
                                 params.end_date)),
                     selectivity=0.4, force=force.get(0)),
            JoinStep("message_tag", outer_key="id",
                     inner_column="message_id", force=force.get(1)),
        ])
    return Optimizer(catalog).plan(spec,
                                   query_id=None if force else 4)


def q4(catalog: Catalog, params: g4.Q4Params) -> list[g4.Q4Result]:
    columns, position = _columns(q4_plan(catalog, params))
    in_window: dict[int, int] = {}
    before: set[int] = set()
    start_date = params.start_date
    for when, tag_id in zip(
            columns[position("inner_creation_date")],
            columns[position("tag_id")]):
        if when < start_date:
            before.add(tag_id)
        else:
            in_window[tag_id] = in_window.get(tag_id, 0) + 1
    rows = [g4.Q4Result(_tag_name(catalog, tag_id), count)
            for tag_id, count in in_window.items() if tag_id not in before]
    rows.sort(key=lambda r: (-r.post_count, r.tag_name))
    return rows[:g4.LIMIT]


def q5_pipeline(catalog: Catalog, params: g5.Q5Params,
                force: dict[int, str] | None = None) -> PlannedPipeline:
    """Optimizer-planned pipeline for Q5's expansion legs.

    knows ⨝ knows ⨝ membership (joined after the date) — the
    friends-of-friends leg of the intended plan (Fig. 6a), feeding the
    forum/post aggregation that :func:`q5` performs.
    """
    force = force or {}
    spec = JoinSpec(
        source_table="knows",
        source_keys=[params.person_id],
        source_column="person1_id",
        steps=[
            JoinStep("knows", outer_key="person2_id",
                     inner_column="person1_id", repeat_expansion=True,
                     force=force.get(0)),
            JoinStep("membership", outer_key="inner_person2_id",
                     inner_column="person_id",
                     residual=Compare("joined_date", "gt",
                                      params.min_date),
                     selectivity=0.3, force=force.get(1)),
        ])
    return Optimizer(catalog).plan(spec,
                                   query_id=None if force else "5.leg")


def q5_plan(catalog: Catalog, params: g5.Q5Params,
            force: dict[int, str] | None = None) -> PlannedPipeline:
    """Q5 production plan: 2-hop circle ⨝ membership (date residual)."""
    force = force or {}
    spec = JoinSpec(
        source_expand=ExpandSource("knows", params.person_id, 2),
        steps=[
            JoinStep("membership", outer_key="node",
                     inner_column="person_id",
                     residual=Compare("joined_date", "gt",
                                      params.min_date),
                     selectivity=0.3, force=force.get(0)),
        ])
    return Optimizer(catalog).plan(spec,
                                   query_id=None if force else 5)


def q5(catalog: Catalog, params: g5.Q5Params) -> list[g5.Q5Result]:
    members = circle(catalog, params.person_id, 2)
    columns, position = _columns(q5_plan(catalog, params))
    joined_forums = set(columns[position("forum_id")])
    message = catalog.table("message")
    rows = []
    for forum_id in joined_forums:
        count = sum(1 for post in message.probe("forum_id", forum_id)
                    if post[1] in members and post[8])
        forum = catalog.table("forum").by_pk(forum_id)
        rows.append(g5.Q5Result(forum_id, forum[1], count))
    rows.sort(key=lambda r: (-r.post_count, r.forum_id))
    return rows[:g5.LIMIT]


def q6_plan(catalog: Catalog, params: g6.Q6Params,
            force: dict[int, str] | None = None) -> PlannedPipeline:
    """Q6: 2-hop circle ⨝ posts ⨝ message_tag."""
    force = force or {}
    spec = JoinSpec(
        source_expand=ExpandSource("knows", params.person_id, 2),
        steps=[
            JoinStep("message", outer_key="node",
                     inner_column="creator_id",
                     residual=Compare("is_post", "eq", True),
                     selectivity=0.5, force=force.get(0)),
            JoinStep("message_tag", outer_key="id",
                     inner_column="message_id", force=force.get(1)),
        ])
    return Optimizer(catalog).plan(spec,
                                   query_id=None if force else 6)


def q6(catalog: Catalog, params: g6.Q6Params) -> list[g6.Q6Result]:
    columns, position = _columns(q6_plan(catalog, params))
    post_tags: dict[int, set[int]] = {}
    for message_id, tag_id in zip(columns[position("id")],
                                  columns[position("tag_id")]):
        bucket = post_tags.get(message_id)
        if bucket is None:
            bucket = post_tags[message_id] = set()
        bucket.add(tag_id)
    counts: dict[int, int] = {}
    wanted = params.tag_id
    for tags in post_tags.values():
        if wanted not in tags:
            continue
        for tag_id in tags:
            if tag_id != wanted:
                counts[tag_id] = counts.get(tag_id, 0) + 1
    rows = [g6.Q6Result(_tag_name(catalog, tag_id), count)
            for tag_id, count in counts.items()]
    rows.sort(key=lambda r: (-r.post_count, r.tag_name))
    return rows[:g6.LIMIT]


def q7_plan(catalog: Catalog, params: g7.Q7Params,
            force: dict[int, str] | None = None) -> PlannedPipeline:
    """Q7: my messages ⨝ likes."""
    force = force or {}
    spec = JoinSpec(
        source_table="message",
        source_keys=[params.person_id],
        source_column="creator_id",
        steps=[
            JoinStep("likes", outer_key="id",
                     inner_column="message_id", force=force.get(0)),
        ])
    return Optimizer(catalog).plan(spec,
                                   query_id=None if force else 7)


def q7(catalog: Catalog, params: g7.Q7Params) -> list[g7.Q7Result]:
    columns, position = _columns(q7_plan(catalog, params))
    latest: dict[int, tuple] = {}
    for liker_id, message_id, like_date, content, message_date in zip(
            columns[position("person_id")],
            columns[position("id")],
            columns[position("inner_creation_date")],
            columns[position("content")],
            columns[position("creation_date")]):
        entry = (like_date, message_id)
        current = latest.get(liker_id)
        if current is None or entry > current[:2]:
            latest[liker_id] = (like_date, message_id, content,
                                message_date)
    friends = set(friend_ids(catalog, params.person_id))
    rows = []
    for liker_id, (like_date, message_id, content,
                   message_date) in latest.items():
        liker = _person(catalog, liker_id)
        rows.append(g7.Q7Result(
            liker_id=liker_id, first_name=liker[1], last_name=liker[2],
            like_date=like_date, message_id=message_id,
            message_content=content,
            latency_minutes=(like_date - message_date)
            // MILLIS_PER_MINUTE,
            is_outside_connections=liker_id not in friends))
    rows.sort(key=lambda r: (-r.like_date, r.liker_id))
    return rows[:g7.LIMIT]


def q8_plan(catalog: Catalog, params: g8.Q8Params,
            force: dict[int, str] | None = None) -> PlannedPipeline:
    """Q8: my messages ⨝ replies (reply_of index)."""
    force = force or {}
    spec = JoinSpec(
        source_table="message",
        source_keys=[params.person_id],
        source_column="creator_id",
        steps=[
            JoinStep("message", outer_key="id",
                     inner_column="reply_of_id", force=force.get(0)),
        ])
    return Optimizer(catalog).plan(spec,
                                   query_id=None if force else 8)


def q8(catalog: Catalog, params: g8.Q8Params) -> list[g8.Q8Result]:
    columns, position = _columns(q8_plan(catalog, params))
    candidates = sorted(zip(
        [-d for d in columns[position("inner_creation_date")]],
        columns[position("inner_id")],
        columns[position("inner_creator_id")],
        columns[position("inner_content")]),
        key=lambda r: r[:2])
    results = []
    for neg_date, comment_id, author_id, content \
            in candidates[:g8.LIMIT]:
        author = _person(catalog, author_id)
        results.append(g8.Q8Result(
            comment_id=comment_id, creation_date=-neg_date,
            content=content, author_id=author_id,
            first_name=author[1], last_name=author[2]))
    return results


def q9_pipeline(catalog: Catalog, params: g9.Q9Params,
                force: dict[int, str] | None = None) -> PlannedPipeline:
    """The Figure 4 pipeline: knows ⨝ knows ⨝ message.

    This is the voluminous friends-of-friends leg of the intended plan's
    union (the leg whose join types the paper's choke-point analysis is
    about).  The intended plan uses INL for both friendship expansions
    and (at paper scale) a hash join for the message join; ``force``
    lets the bench pin any step to ``"inl"`` or ``"hash"`` to measure
    the penalty of a wrong choice.  The production :func:`q9` expands
    the full 1∪2-hop circle via :func:`q9_plan`.
    """
    force = force or {}
    spec = JoinSpec(
        source_table="knows",
        source_keys=[params.person_id],
        source_column="person1_id",
        steps=[
            JoinStep("knows", outer_key="person2_id",
                     inner_column="person1_id", repeat_expansion=True,
                     force=force.get(0)),
            JoinStep("message", outer_key="inner_person2_id",
                     inner_column="creator_id",
                     residual=Compare("inner_inner_creation_date", "lt",
                                      params.max_date),
                     selectivity=0.5, force=force.get(1)),
        ])
    return Optimizer(catalog).plan(spec,
                                   query_id=None if force else "9.leg")


def q9_plan(catalog: Catalog, params: g9.Q9Params,
            force: dict[int, str] | None = None) -> PlannedPipeline:
    """Q9 production plan: 2-hop circle ⨝ message (date residual)."""
    force = force or {}
    optimizer = Optimizer(catalog)
    window = optimizer.estimator.date_selectivity(
        "message", "creation_date", None, params.max_date)
    spec = JoinSpec(
        source_expand=ExpandSource("knows", params.person_id, 2),
        steps=[
            JoinStep("message", outer_key="node",
                     inner_column="creator_id",
                     residual=Compare("creation_date", "lt",
                                      params.max_date),
                     selectivity=max(window, 0.01),
                     force=force.get(0)),
        ])
    return optimizer.plan(spec, query_id=None if force else 9)


def q9(catalog: Catalog, params: g9.Q9Params) -> list[g9.Q9Result]:
    columns, position = _columns(q9_plan(catalog, params))
    candidates = sorted(zip(
        [-d for d in columns[position("creation_date")]],
        columns[position("id")],
        columns[position("creator_id")],
        columns[position("content")],
        columns[position("is_post")]),
        key=lambda r: r[:2])
    results = []
    for neg_date, message_id, creator_id, content, is_post \
            in candidates[:g9.LIMIT]:
        author = _person(catalog, creator_id)
        results.append(g9.Q9Result(
            person_id=creator_id, first_name=author[1],
            last_name=author[2], message_id=message_id, content=content,
            creation_date=-neg_date, is_post=is_post))
    return results


def q9_time_index_variant(catalog: Catalog, params: g9.Q9Params,
                          ) -> list[g9.Q9Result]:
    """Q9 exploiting time-ordered message ids (paper §3's last point).

    "The system may choose to assign identifiers to Posts/Comments
    entities such that their IDs are increasing in time ... the final
    selection of Posts/Comments created before a certain date will have
    high locality.  Moreover, it will eliminate the need for sorting at
    the end."

    Instead of expanding the circle and sorting its messages, this
    variant walks the creation-date ordered index *descending* from the
    date bound and keeps the first 20 messages whose creator is in the
    2-hop circle — no sort, and it touches only the newest sliver of
    the message table.
    """
    members = circle(catalog, params.person_id, 2)
    message = catalog.table("message")
    results: list[g9.Q9Result] = []
    pending: list[tuple] = []
    last_date: int | None = None
    for row in message.range_scan(high=params.max_date - 1,
                                  reverse=True):
        if last_date is not None and row[3] != last_date \
                and len(results) + len(pending) >= g9.LIMIT:
            break
        if row[3] != last_date:
            # Flush the previous date group in id order (the required
            # tie-break), then start a new group.
            pending.sort(key=lambda r: r[0])
            results.extend(_q9_rows(catalog, pending))
            pending = []
            last_date = row[3]
        if row[1] in members:
            pending.append(row)
    pending.sort(key=lambda r: r[0])
    results.extend(_q9_rows(catalog, pending))
    return results[:g9.LIMIT]


def _q9_rows(catalog: Catalog, rows: list[tuple]) -> list[g9.Q9Result]:
    out = []
    for row in rows:
        author = _person(catalog, row[1])
        out.append(g9.Q9Result(
            person_id=row[1], first_name=author[1], last_name=author[2],
            message_id=row[0], content=_message_content(row),
            creation_date=row[3], is_post=row[8]))
    return out


def q10_plan(catalog: Catalog, params: g10.Q10Params,
             force: dict[int, str] | None = None) -> PlannedPipeline:
    """Q10: friends ⨝ knows (fof) ⨝ person (horoscope residual)."""
    force = force or {}
    month = params.month
    spec = JoinSpec(
        source_table="knows",
        source_keys=[params.person_id],
        source_column="person1_id",
        steps=[
            JoinStep("knows", outer_key="person2_id",
                     inner_column="person1_id", repeat_expansion=True,
                     force=force.get(0)),
            JoinStep("person", outer_key="inner_person2_id",
                     inner_column=None,
                     residual=Where(
                         "birthday",
                         lambda b: g10._in_horoscope_window(b, month)),
                     selectivity=1 / 12, force=force.get(1)),
        ])
    return Optimizer(catalog).plan(spec,
                                   query_id=None if force else 10)


def q10(catalog: Catalog, params: g10.Q10Params) -> list[g10.Q10Result]:
    interests = {row[1] for row in catalog.table("person_tag").probe(
        "person_id", params.person_id)}
    friends = set(friend_ids(catalog, params.person_id))
    columns, position = _columns(q10_plan(catalog, params))
    candidates: dict[int, tuple] = {}
    for person_id, first_name, last_name, gender, city_id in zip(
            columns[position("id")],
            columns[position("first_name")],
            columns[position("last_name")],
            columns[position("gender")],
            columns[position("city_id")]):
        if person_id == params.person_id or person_id in friends \
                or person_id in candidates:
            continue
        candidates[person_id] = (first_name, last_name, gender, city_id)
    rows = []
    for candidate, (first_name, last_name, gender,
                    city_id) in candidates.items():
        common = uncommon = 0
        for message in _messages_by(catalog, candidate):
            if not message[8]:
                continue
            if _message_tags(catalog, message[0]) & interests:
                common += 1
            else:
                uncommon += 1
        city = catalog.table("place").by_pk(city_id)
        rows.append(g10.Q10Result(
            person_id=candidate, first_name=first_name,
            last_name=last_name, similarity=common - uncommon,
            gender=gender, city_name=city[1]))
    rows.sort(key=lambda r: (-r.similarity, r.person_id))
    return rows[:g10.LIMIT]


def q11_plan(catalog: Catalog, params: g11.Q11Params,
             force: dict[int, str] | None = None) -> PlannedPipeline:
    """Q11: 2-hop circle ⨝ work_at (year residual) ⨝ organisation
    (country residual)."""
    force = force or {}
    spec = JoinSpec(
        source_expand=ExpandSource("knows", params.person_id, 2),
        steps=[
            JoinStep("work_at", outer_key="node",
                     inner_column="person_id",
                     residual=Compare("work_from", "lt",
                                      params.max_work_from),
                     selectivity=0.5, force=force.get(0)),
            JoinStep("organisation", outer_key="organisation_id",
                     inner_column=None,
                     residual=Compare("location_id", "eq",
                                      params.country_id),
                     selectivity=0.1, force=force.get(1)),
        ])
    return Optimizer(catalog).plan(spec,
                                   query_id=None if force else 11)


def q11(catalog: Catalog, params: g11.Q11Params) -> list[g11.Q11Result]:
    columns, position = _columns(q11_plan(catalog, params))
    records = sorted(zip(
        columns[position("work_from")],
        columns[position("node")],
        columns[position("name")]),
        key=lambda r: r)
    rows = []
    for work_from, person_id, organisation_name \
            in records[:g11.LIMIT]:
        person = _person(catalog, person_id)
        rows.append(g11.Q11Result(
            person_id=person_id, first_name=person[1],
            last_name=person[2], organisation_name=organisation_name,
            work_from=work_from))
    return rows


def q12_plan(catalog: Catalog, params: g12.Q12Params,
             force: dict[int, str] | None = None) -> PlannedPipeline:
    """Q12: friends ⨝ comments (is_post=False residual)."""
    force = force or {}
    spec = JoinSpec(
        source_table="knows",
        source_keys=[params.person_id],
        source_column="person1_id",
        steps=[
            JoinStep("message", outer_key="person2_id",
                     inner_column="creator_id",
                     residual=Compare("is_post", "eq", False),
                     selectivity=0.5, force=force.get(0)),
        ])
    return Optimizer(catalog).plan(spec,
                                   query_id=None if force else 12)


def q12(catalog: Catalog, params: g12.Q12Params) -> list[g12.Q12Result]:
    tagclass = catalog.table("tagclass")
    wanted = {params.tag_class_id}
    changed = True
    while changed:
        changed = False
        for row in tagclass.rows:
            if row[2] in wanted and row[0] not in wanted:
                wanted.add(row[0])
                changed = True
    columns, position = _columns(q12_plan(catalog, params))
    counts: dict[int, int] = {}
    tags_by_friend: dict[int, set[int]] = {}
    tag_table = catalog.table("tag")
    for friend_id, parent_id in zip(
            columns[position("person2_id")],
            columns[position("reply_of_id")]):
        if not is_kind(parent_id, EntityKind.POST):
            continue
        matching = {tag_id
                    for tag_id in _message_tags(catalog, parent_id)
                    if tag_table.by_pk(tag_id)[2] in wanted}
        if matching:
            counts[friend_id] = counts.get(friend_id, 0) + 1
            bucket = tags_by_friend.get(friend_id)
            if bucket is None:
                bucket = tags_by_friend[friend_id] = set()
            bucket |= matching
    rows = []
    for friend_id, reply_count in counts.items():
        person = _person(catalog, friend_id)
        rows.append(g12.Q12Result(
            person_id=friend_id, first_name=person[1],
            last_name=person[2], reply_count=reply_count,
            tag_names=tuple(sorted(
                _tag_name(catalog, t)
                for t in tags_by_friend[friend_id]))))
    rows.sort(key=lambda r: (-r.reply_count, r.person_id))
    return rows[:g12.LIMIT]


#: "Unbounded" BFS depth for the path queries (bounded by the graph).
UNBOUNDED = 1 << 30


def q13_plan(catalog: Catalog, params: g13.Q13Params,
             force: dict[int, str] | None = None) -> PlannedPipeline:
    """Q13: pure transitive expansion from x (no join steps)."""
    spec = JoinSpec(
        source_expand=ExpandSource("knows", params.person_x_id,
                                   UNBOUNDED))
    return Optimizer(catalog).plan(spec,
                                   query_id=None if force else 13)


def q13(catalog: Catalog, params: g13.Q13Params) -> list[g13.Q13Result]:
    if params.person_x_id == params.person_y_id:
        return [g13.Q13Result(0)]
    pipeline = q13_plan(catalog, params)
    target = params.person_y_id
    if execution_mode() == VECTORIZED:
        # One chunk per BFS level: scan the node column (C-level
        # membership test), abandon the expansion at the found level.
        for chunk in pipeline.root.chunks():
            if target in chunk.columns[0]:
                return [g13.Q13Result(chunk.columns[1][0])]
    else:
        for node, distance in pipeline.root:
            if node == target:
                return [g13.Q13Result(distance)]
    return [g13.Q13Result(-1)]


def _q14_search(catalog: Catalog, params: g14.Q14Params):
    """BFS distances from x plus all shortest x→y paths.

    Vectorized mode runs the BFS frontier-at-a-time against the packed
    CSR adjacency; tuple mode probes the knows index per node.  Both
    produce identical distances and (as neighbor order is the index
    posting order either way) identical path enumeration.
    """
    source, target = params.person_x_id, params.person_y_id
    knows = catalog.table("knows")
    if execution_mode() == VECTORIZED:
        csr = knows.csr("person1_id", "person2_id")
        neighbors = csr.neighbors
        distances: dict[int, int] = {source: 0}
        found = None
        frontier = [source]
        depth = 0
        seen = {source}
        while frontier and found is None:
            depth += 1
            fresh = set(csr.gather(frontier))
            fresh.difference_update(seen)
            if not fresh:
                break
            seen.update(fresh)
            for node in fresh:
                distances[node] = depth
            if target in fresh:
                found = depth
            frontier = list(fresh)
    else:
        def neighbors(node: int) -> list[int]:
            return [row[1] for row in knows.probe("person1_id", node)]

        distances = {source: 0}
        frontier = [source]
        found = None
        while frontier and found is None:
            next_frontier = []
            for node in frontier:
                for neighbor in neighbors(node):
                    if neighbor not in distances:
                        distances[neighbor] = distances[node] + 1
                        next_frontier.append(neighbor)
                        if neighbor == target:
                            found = distances[neighbor]
            frontier = next_frontier
    if found is None:
        return distances, None, []
    paths: list[list[int]] = []
    stack = [[target]]
    while stack and len(paths) < g14.MAX_PATHS:
        partial = stack.pop()
        head = partial[-1]
        if head == source:
            paths.append(list(reversed(partial)))
            continue
        want = distances[head] - 1
        for neighbor in neighbors(head):
            if distances.get(neighbor) == want:
                stack.append(partial + [neighbor])
    return distances, found, paths


def q14_plan(catalog: Catalog, params: g14.Q14Params,
             force: dict[int, str] | None = None,
             members: list[int] | None = None) -> PlannedPipeline:
    """Q14 weight leg: path members' comments ⨝ parent message (pk),
    keeping parents authored inside the member set."""
    force = force or {}
    if members is None:
        _, found, paths = _q14_search(catalog, params)
        members = sorted({node for path in paths for node in path}) \
            if found is not None else []
    spec = JoinSpec(
        source_table="message",
        source_keys=list(members),
        source_column="creator_id",
        steps=[
            JoinStep("message", outer_key="reply_of_id",
                     inner_column=None,
                     residual=InSet("inner_creator_id", members),
                     selectivity=0.05, force=force.get(0)),
        ])
    return Optimizer(catalog).plan(spec,
                                   query_id=None if force else 14)


def q14(catalog: Catalog, params: g14.Q14Params) -> list[g14.Q14Result]:
    source, target = params.person_x_id, params.person_y_id
    if source == target:
        return [g14.Q14Result((source,), 0.0)]
    _, found, paths = _q14_search(catalog, params)
    if found is None:
        return []
    members = sorted({node for path in paths for node in path})
    pipeline = q14_plan(catalog, params, members=members)
    columns, position = _columns(pipeline)
    weights: dict[tuple[int, int], float] = {}
    for replier, author, parent_is_post in zip(
            columns[position("creator_id")],
            columns[position("inner_creator_id")],
            columns[position("inner_is_post")]):
        key = (replier, author) if replier < author \
            else (author, replier)
        weights[key] = weights.get(key, 0.0) \
            + (1.0 if parent_is_post else 0.5)
    results = [
        g14.Q14Result(
            tuple(path),
            sum(weights.get((a, b) if a < b else (b, a), 0.0)
                for a, b in zip(path, path[1:])))
        for path in paths]
    results.sort(key=lambda r: (-r.weight, r.path))
    return results


#: query id → engine implementation.
ENGINE_COMPLEX = {
    1: q1, 2: q2, 3: q3, 4: q4, 5: q5, 6: q6, 7: q7, 8: q8, 9: q9,
    10: q10, 11: q11, 12: q12, 13: q13, 14: q14,
}

#: query id → optimizer plan builder — full coverage of the read mix.
#: Every builder has signature ``(catalog, params, force=None)`` and
#: returns a :class:`PlannedPipeline`; ``force`` maps step index →
#: "inl"/"hash" and bypasses the plan cache.
PIPELINES = {
    1: q1_plan, 2: q2_pipeline, 3: q3_plan, 4: q4_plan, 5: q5_plan,
    6: q6_plan, 7: q7_plan, 8: q8_plan, 9: q9_plan, 10: q10_plan,
    11: q11_plan, 12: q12_plan, 13: q13_plan, 14: q14_plan,
}


# ---------------------------------------------------------------------------
# the 7 short reads
# ---------------------------------------------------------------------------

def s1(catalog: Catalog, person_id: int) -> gs.S1Result | None:
    row = catalog.table("person").get_pk(person_id)
    if row is None:
        return None
    return gs.S1Result(row[1], row[2], row[4], row[9], row[8], row[6],
                       row[3], row[5])


def s2(catalog: Catalog, person_id: int, limit: int = 10,
       ) -> list[gs.S2Result]:
    mine = sorted(_messages_by(catalog, person_id),
                  key=lambda r: (-r[3], r[0]))[:limit]
    results = []
    for row in mine:
        root_id = row[0] if row[8] else row[9]
        root = catalog.table("message").by_pk(root_id)
        author = _person(catalog, root[1])
        results.append(gs.S2Result(
            message_id=row[0], content=_message_content(row),
            creation_date=row[3], root_post_id=root_id,
            root_author_id=root[1], root_author_first_name=author[1],
            root_author_last_name=author[2]))
    return results


def s3(catalog: Catalog, person_id: int) -> list[gs.S3Result]:
    rows = []
    for edge in catalog.table("knows").probe("person1_id", person_id):
        friend = _person(catalog, edge[1])
        rows.append(gs.S3Result(edge[1], friend[1], friend[2], edge[2]))
    rows.sort(key=lambda r: (-r.friendship_date, r.person_id))
    return rows


def s4(catalog: Catalog, message_id: int) -> gs.S4Result | None:
    row = catalog.table("message").get_pk(message_id)
    if row is None:
        return None
    return gs.S4Result(row[3], _message_content(row))


def s5(catalog: Catalog, message_id: int) -> gs.S5Result | None:
    row = catalog.table("message").get_pk(message_id)
    if row is None:
        return None
    author = _person(catalog, row[1])
    return gs.S5Result(row[1], author[1], author[2])


def s6(catalog: Catalog, message_id: int) -> gs.S6Result | None:
    row = catalog.table("message").get_pk(message_id)
    if row is None:
        return None
    forum_id = row[2] if row[8] else None
    if forum_id is None:
        root = catalog.table("message").get_pk(row[9])
        if root is None:
            return None
        forum_id = root[2]
    forum = catalog.table("forum").by_pk(forum_id)
    moderator = _person(catalog, forum[3])
    return gs.S6Result(forum_id, forum[1], forum[3], moderator[1],
                       moderator[2])


def s7(catalog: Catalog, message_id: int) -> list[gs.S7Result]:
    row = catalog.table("message").get_pk(message_id)
    if row is None:
        return []
    author_friends = set(friend_ids(catalog, row[1]))
    rows = []
    for reply in catalog.table("message").probe("reply_of_id",
                                                message_id):
        author = _person(catalog, reply[1])
        rows.append(gs.S7Result(
            comment_id=reply[0], content=reply[4],
            creation_date=reply[3], author_id=reply[1],
            author_first_name=author[1], author_last_name=author[2],
            knows_original_author=reply[1] in author_friends))
    rows.sort(key=lambda r: (-r.creation_date, r.author_id))
    return rows


ENGINE_SHORT = {1: s1, 2: s2, 3: s3, 4: s4, 5: s5, 6: s6, 7: s7}


# ---------------------------------------------------------------------------
# the 8 updates
# ---------------------------------------------------------------------------

def execute_engine_update(catalog: Catalog, operation) -> None:
    """Apply one update-stream operation to the relational catalog."""
    from ..datagen.update_stream import UpdateKind

    kind = operation.kind
    payload = operation.payload
    if kind is UpdateKind.ADD_PERSON:
        catalog.insert_person(payload)
    elif kind is UpdateKind.ADD_FRIENDSHIP:
        catalog.insert_friendship(payload)
    elif kind is UpdateKind.ADD_FORUM:
        catalog.insert_forum(payload)
    elif kind is UpdateKind.ADD_FORUM_MEMBERSHIP:
        catalog.insert_membership(payload)
    elif kind is UpdateKind.ADD_POST:
        catalog.insert_post(payload)
    elif kind is UpdateKind.ADD_COMMENT:
        catalog.insert_comment(payload)
    else:
        catalog.insert_like(payload)
