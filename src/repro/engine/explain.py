"""EXPLAIN rendering of physical plans (the Figure 4 artifact).

Renders an operator tree (or a planned pipeline with its optimizer
decisions) as an indented tree annotated with estimated and — after
execution — actual cardinalities, mirroring Figure 4's plan for Query 9.
"""

from __future__ import annotations

from .operators import Operator
from .optimizer import PlannedPipeline


def explain(root: Operator, show_actuals: bool = False) -> str:
    """Indented tree of the plan; optimizer estimates are rendered
    next to actual cardinalities once executed (``est=…`` / ``out=…``),
    so mis-estimates are visible per operator."""
    lines: list[str] = []

    def visit(op: Operator, depth: int) -> None:
        notes = []
        if op.estimated_rows is not None:
            notes.append(f"est={op.estimated_rows:.1f}")
        if show_actuals:
            notes.append(f"out={op.tuples_out}")
        note = f"  [{' '.join(notes)}]" if notes else ""
        lines.append("  " * depth + op.label + note)
        for child in op.children:
            visit(child, depth + 1)

    visit(root, 0)
    return "\n".join(lines)


def explain_pipeline(pipeline: PlannedPipeline,
                     show_actuals: bool = False) -> str:
    """Plan tree plus the per-join optimizer decisions (Fig. 4 style)."""
    parts = [explain(pipeline.root, show_actuals), "", "join decisions:"]
    for decision in pipeline.decisions:
        parts.append(
            f"  ⨝{decision.step_index + 1} {decision.inner_table:<12} "
            f"{decision.algorithm.upper():<5} "
            f"est_outer={decision.estimated_outer:10.1f} "
            f"est_out={decision.estimated_output:10.1f} "
            f"cost(inl)={decision.inl_cost:10.1f} "
            f"cost(hash)={decision.hash_cost:10.1f}")
    return "\n".join(parts)
