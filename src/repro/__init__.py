"""Reproduction of "The LDBC Social Network Benchmark: Interactive
Workload" (Erling et al., SIGMOD 2015).

A from-scratch, pure-Python implementation of the complete SNB
Interactive stack:

* :mod:`repro.datagen` — the correlated social-network generator
  (DATAGEN): correlated attributes, spiking trends, sliding-window
  friendship generation, deterministic parallelism;
* :mod:`repro.schema` — the 11-entity / 20-relation SNB schema;
* :mod:`repro.store` — an MVCC snapshot-isolation property-graph store
  (the native-API SUT);
* :mod:`repro.engine` — a volcano-style relational engine with a
  cost-based optimizer (the SQL SUT);
* :mod:`repro.queries` — the 14 complex reads, 7 short reads and 8
  transactional updates;
* :mod:`repro.curation` — parameter curation (Parameter-Count tables +
  greedy minimal-variance selection);
* :mod:`repro.workload` — the Table 4 query mix, short-read random walk
  and frequency calibration;
* :mod:`repro.driver` — the dependency-tracking parallel workload driver
  (LDS/GDS, parallel / sequential / windowed execution);
* :mod:`repro.core` — benchmark orchestration and full-disclosure
  reporting.

Quickstart::

    from repro import BenchmarkConfig, InteractiveBenchmark, render_report

    report = InteractiveBenchmark(BenchmarkConfig(num_persons=300)).run()
    print(render_report(report))
"""

from .core import (
    BenchmarkConfig,
    BenchmarkReport,
    InteractiveBenchmark,
    render_report,
)
from .datagen import DatagenConfig, generate, persons_for_scale_factor
from .schema import SocialNetwork, validate_network

__version__ = "1.0.0"

__all__ = [
    "BenchmarkConfig",
    "BenchmarkReport",
    "DatagenConfig",
    "InteractiveBenchmark",
    "SocialNetwork",
    "__version__",
    "generate",
    "persons_for_scale_factor",
    "render_report",
    "validate_network",
]
