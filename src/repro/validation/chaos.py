"""Chaos soak: the strongest robustness property the harness can check.

A run perturbed by injected faults — transient aborts, latency spikes,
hangs, genuine MVCC write conflicts — must converge to the **exact same
final state digest** as a fault-free run, with zero dependency
timeouts.  The canonical snapshots of :mod:`repro.validation.snapshot`
carry no commit timestamps, so the digest is insensitive to the retry
reordering chaos introduces; any divergence means an update was lost,
double-applied, or executed against the wrong dependency state.

Two entry points:

* :func:`run_chaos` — the soak proper (``repro chaos``): clean
  reference digest, then a driver run through a
  :class:`~repro.faults.FaultInjectingConnector` under a real
  resilience policy, then the verdict;
* :func:`chaos_canary` — the harness-of-the-harness
  (``repro validate --check … --canary-faults``): the same soak with
  retry *classification disabled* (every fault treated fatal) must
  FAIL, proving the injector actually fires and the soak can detect a
  broken run — a chaos harness that cannot fail proves nothing.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..datagen.update_stream import SplitDataset
from ..driver import (
    DegradePolicy,
    DriverConfig,
    DriverReport,
    ExecutionMode,
    RetryPolicy,
    SUTConnector,
    WorkloadDriver,
)
from ..errors import BenchmarkError
from ..faults import FaultInjectingConnector, FaultPlan, \
    install_conflict_injector
from .snapshot import snapshot_catalog, snapshot_digest, snapshot_store

#: The default soak policy: generous transient retries, fail fast on
#: anything fatal (a fatal fault must surface, not degrade silently).
DEFAULT_POLICY = RetryPolicy(max_retries=8, base_backoff=0.0005,
                             max_backoff=0.05)


def _make_sut(split: SplitDataset, sut_name: str):
    from ..core.sut import EngineSUT, StoreSUT

    if sut_name == "store":
        return StoreSUT.for_network(split.bulk)
    if sut_name == "engine":
        return EngineSUT.for_network(split.bulk)
    raise BenchmarkError(f"unknown SUT {sut_name!r}")


def _digest_of(sut, sut_name: str) -> str:
    digest = getattr(sut, "digest", None)
    if callable(digest):
        return digest()
    snap = snapshot_store(sut.store) if sut_name == "store" \
        else snapshot_catalog(sut.catalog)
    return snapshot_digest(snap)


def clean_run_digest(split: SplitDataset, sut_name: str) -> str:
    """Final-state digest of a fault-free in-order replay (the oracle)."""
    from ..core.operation import Update

    sut = _make_sut(split, sut_name)
    for operation in split.updates:
        sut.execute(Update(operation))
    return _digest_of(sut, sut_name)


@dataclass
class ChaosReport:
    """Outcome of one chaos soak against one SUT."""

    sut: str
    clean_digest: str
    chaos_digest: str
    #: fault-kind name → injections that actually fired.
    injected: dict[str, int] = field(default_factory=dict)
    #: Store-level write conflicts injected (store SUT only).
    injected_conflicts: int = 0
    #: Worker-side shard faults that fired (sharded runs only).
    injected_shard_faults: dict[str, int] = field(default_factory=dict)
    #: Supervised worker respawns (crash-tolerant sharded runs only).
    worker_restarts: int = 0
    driver: DriverReport | None = None
    #: Set when the perturbed run raised instead of completing.
    failure: str | None = None

    @property
    def injected_total(self) -> int:
        return (sum(self.injected.values()) + self.injected_conflicts
                + sum(self.injected_shard_faults.values()))

    @property
    def digests_match(self) -> bool:
        return self.clean_digest == self.chaos_digest

    @property
    def ok(self) -> bool:
        """Converged, nothing wedged, and the injector provably fired."""
        return (self.failure is None
                and self.digests_match
                and self.injected_total > 0
                and self.driver is not None
                and self.driver.dependency_timeouts == 0)


def run_chaos(split: SplitDataset, sut_name: str, plan: FaultPlan,
              seed: int = 0, policy: RetryPolicy | None = None,
              num_partitions: int = 4,
              mode: ExecutionMode = ExecutionMode.PARALLEL,
              window_millis: int | None = None,
              conflict_rate: float = 0.0,
              dependency_wait_timeout: float = 60.0,
              remote: str | None = None,
              shards: int = 0,
              shard_faults=None,
              shard_timeout: float = 30.0,
              shard_wal_dir: str | None = None,
              shard_max_restarts: int = 8) -> ChaosReport:
    """Drive the update stream under faults; compare final digests.

    The fault-injecting connector wraps a unified-API adapter over the
    chosen SUT (serialized for the engine, whose catalog has no
    internal concurrency control).  ``conflict_rate`` additionally
    installs the store-level :class:`ConflictInjector` so real MVCC
    aborts join the mix (store SUT only).

    ``remote`` (``host:port`` of a ``repro serve`` instance loaded with
    the same split) swaps the in-process SUT for the wire client: the
    clean reference digest is still computed locally, injected faults
    perturb the *client side* of the wire, and the final digest is
    fetched from the server's admin endpoint — so the soak proves the
    whole remote stack (codec, pipelining, retry mapping, server-side
    dedup) converges to the same bytes.

    ``shards`` > 0 swaps the in-process store for the multi-process
    sharded store (``shard_faults`` optionally arms worker-side aborts
    and delays, ``shard_timeout`` bounds each router RPC) — the clean
    reference digest stays single-process, so the soak simultaneously
    proves exactly-once commit under faults *and* shard-placement
    digest invariance.

    ``shard_wal_dir`` arms crash tolerance: per-shard WALs, the 2PC
    coordinator log, and supervised respawn (budgeted by
    ``shard_max_restarts``).  It is required when ``shard_faults``
    carries crash rates (``kill_rate`` / ``kill_after_prepare`` /
    ``torn_wal_rate``) — those soaks ``kill -9`` workers mid-protocol
    and the digest gate then proves no acknowledged update was lost
    and nothing double-applied across the recoveries.
    """
    clean = clean_run_digest(split, sut_name)

    if remote is not None:
        if conflict_rate > 0.0:
            raise BenchmarkError(
                "store-level conflict injection is in-process only; "
                "run the server with its own conflict settings instead")
        if shards > 0:
            raise BenchmarkError(
                "--shards spawns the sharded SUT in-process; start the "
                "server with --shards instead of combining it with "
                "--remote")
        from ..net.client import RemoteConnector

        sut = RemoteConnector.parse(remote)
    elif shards > 0:
        if sut_name != "store":
            raise BenchmarkError(
                "the sharded SUT partitions the graph store; use "
                "--sut store with --shards")
        if conflict_rate > 0.0:
            raise BenchmarkError(
                "store-level conflict injection is in-process only; "
                "use --shard-abort-rate/--shard-delay-rate to fault "
                "the workers instead")
        from ..shard import ShardedStoreSUT

        sut = ShardedStoreSUT.for_network(
            split.bulk, shards, faults=shard_faults,
            request_timeout=shard_timeout, wal_dir=shard_wal_dir,
            max_restarts=shard_max_restarts)
    else:
        sut = _make_sut(split, sut_name)
    inner = SUTConnector(sut, serialize=(remote is None
                                         and sut_name == "engine"))
    connector = FaultInjectingConnector(inner, plan, seed=seed,
                                        operations=split.updates)
    conflicts = None
    if conflict_rate > 0.0:
        if sut_name != "store":
            raise BenchmarkError(
                "store-level conflict injection requires the store SUT")
        conflicts = install_conflict_injector(sut.store, seed,
                                              conflict_rate)
    config = DriverConfig(
        num_partitions=num_partitions, mode=mode,
        window_millis=window_millis,
        dependency_wait_timeout=dependency_wait_timeout,
        resilience=policy or DEFAULT_POLICY, seed=seed)
    driver = WorkloadDriver(connector, config)

    report = ChaosReport(sut=sut_name, clean_digest=clean,
                         chaos_digest="",
                         injected=connector.injected_counts())
    try:
        report.driver = driver.run(split.updates)
    except Exception as exc:
        report.failure = f"{type(exc).__name__}: {exc}"
    report.injected = connector.injected_counts()
    if conflicts is not None:
        report.injected_conflicts = conflicts.injected
        sut.store.fault_injector = None  # quiesce for the snapshot read
    if report.failure is None:
        # Digest BEFORE stats on sharded runs: the snapshot gather is
        # supervised, so a worker that died at the very end of the
        # stream is recovered here first and its counters are readable.
        report.chaos_digest = sut.digest() if remote is not None \
            else _digest_of(sut, sut_name)
    if shards > 0 and shard_faults is not None:
        stats = sut.stats()
        fired: dict[str, int] = {}
        for worker in stats.get("shards", []):
            for kind, count in worker.get("faults", {}).items():
                if count:
                    fired[kind] = fired.get(kind, 0) + count
        report.injected_shard_faults = fired
        report.worker_restarts = stats.get(
            "supervisor", {}).get("restarts", 0)
    if remote is not None or shards > 0:
        sut.close()
    return report


def chaos_canary(split: SplitDataset, sut_name: str, plan: FaultPlan,
                 seed: int = 0, num_partitions: int = 2,
                 ) -> tuple[bool, ChaosReport]:
    """Soak with retry classification disabled — it must FAIL.

    Returns ``(caught, report)`` where ``caught`` is True when the
    unprotected run failed (raised, diverged, or saw no injections at
    all counts as NOT caught).  Guards the chaos harness against
    rotting into a no-op: if faults stop firing, or the soak stops
    noticing a driver that cannot retry, the canary goes green-blind
    and CI fails.
    """
    no_retry = RetryPolicy(max_retries=8, base_backoff=0.0,
                           max_backoff=0.0,
                           classify=lambda exc: False)
    report = run_chaos(split, sut_name, plan, seed=seed,
                       policy=no_retry, num_partitions=num_partitions,
                       dependency_wait_timeout=10.0)
    caught = report.injected_total > 0 and (
        report.failure is not None or not report.digests_match)
    return caught, report


def render_chaos(report: ChaosReport) -> str:
    """Human-readable chaos soak summary."""
    lines = [f"chaos soak [{report.sut}]:"]
    injected = ", ".join(f"{kind}={count}"
                         for kind, count in sorted(report.injected.items())
                         if count) or "none"
    lines.append(f"  injected faults: {injected}"
                 + (f", store conflicts={report.injected_conflicts}"
                    if report.injected_conflicts else ""))
    if report.injected_shard_faults:
        shard_faults = ", ".join(
            f"{kind}={count}" for kind, count
            in sorted(report.injected_shard_faults.items()))
        lines.append(f"  shard worker faults: {shard_faults}")
    if report.worker_restarts:
        lines.append(f"  supervised worker restarts: "
                     f"{report.worker_restarts}")
    if report.failure is not None:
        lines.append(f"  run FAILED: {report.failure}")
    elif report.driver is not None:
        d = report.driver
        retries = ", ".join(
            f"{name}={count}"
            for name, count in sorted(d.retries_by_class.items())) \
            or "none"
        lines.append(f"  driver: {d.metrics.operations} ops, "
                     f"{d.retries} retries ({retries}), "
                     f"{d.skipped} skipped, {d.breaker_trips} breaker "
                     f"trips, {d.op_timeouts} op timeouts, "
                     f"{d.dependency_timeouts} dependency timeouts")
    lines.append(
        f"  state digest: {'MATCH' if report.digests_match else 'MISMATCH'}"
        f" (clean {report.clean_digest[:12]}…, "
        f"chaos {report.chaos_digest[:12] if report.chaos_digest else '—'}…)"
        if report.failure is None else
        f"  state digest: not compared (run failed)")
    lines.append(f"  verdict: {'OK — chaos run converged' if report.ok else 'FAILED'}")
    return "\n".join(lines)
