"""Canonical result forms, digests, and structured per-column diffs.

Every validation surface — the static cross-SUT checker
(:mod:`repro.core.validation`), the update-aware differential runner,
golden datasets, and replay bundles — compares query results through the
same canonical form so a disagreement means the same thing everywhere:

* :func:`canonicalize` maps a query result (a result dataclass, a list
  of them, or ``None``) to plain JSON-compatible data: dataclasses
  become ``{field: value}`` dicts, tuples become lists;
* :func:`comparable` is the single per-query comparison projection.
  Since the relational engine now materializes the denormalized
  multi-valued person attributes (``person_email`` /
  ``person_language``), every query compares on the full canonical row;
  this function stays the one place to register a projection should a
  future SUT genuinely not produce a column;
* :func:`diff_results` produces a structured :class:`ResultDiff` — the
  first differing rows *per column*, not just row counts.

This module is intentionally stdlib-only so every layer (including the
driver) may import it without cycles.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field
from enum import Enum


def canonicalize(value):
    """Recursively convert a result value to JSON-compatible data."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {f.name: canonicalize(getattr(value, f.name))
                for f in dataclasses.fields(value)}
    if isinstance(value, Enum):
        return value.name
    if isinstance(value, dict):
        return {str(key): canonicalize(val) for key, val in value.items()}
    if isinstance(value, (list, tuple)):
        return [canonicalize(item) for item in value]
    if isinstance(value, (set, frozenset)):
        return sorted((canonicalize(item) for item in value), key=repr)
    return value


def comparable(query_id: int, rows) -> object:
    """The shared comparison form of one query's result.

    ``query_id`` is accepted (and currently unused) so per-query
    projections have exactly one home if a SUT ever cannot emit a
    column — the historical Q1 shared-column projection lived here
    until the engine grew ``person_email`` / ``person_language``.
    """
    return canonicalize(rows)


def canonical_json(value) -> str:
    """Deterministic JSON encoding of a (canonicalized) value."""
    return json.dumps(canonicalize(value), sort_keys=True,
                      separators=(",", ":"), ensure_ascii=True)


def digest(value) -> str:
    """Content digest of a value's canonical JSON form."""
    encoded = canonical_json(value).encode("utf-8")
    return "sha256:" + hashlib.sha256(encoded).hexdigest()


# ---------------------------------------------------------------------------
# structured diffs
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ColumnDiff:
    """One differing cell: row index, column name, both values.

    ``column`` is ``"<row>"`` for non-record rows and ``"<missing>"``
    when one side has no row at this index at all.
    """

    row: int
    column: str
    left: object
    right: object

    def describe(self) -> str:
        return (f"row {self.row} col {self.column}: "
                f"{_short(self.left)} != {_short(self.right)}")


@dataclass
class ResultDiff:
    """Structured disagreement between two result sets."""

    left_rows: int
    right_rows: int
    column_diffs: list[ColumnDiff] = field(default_factory=list)
    #: Differing cells beyond the ones collected in ``column_diffs``.
    truncated: int = 0

    @property
    def equal(self) -> bool:
        return not self.column_diffs \
            and self.left_rows == self.right_rows

    def describe(self, left_name: str = "left",
                 right_name: str = "right") -> str:
        """One-line summary: counts, first diff, and the overflow."""
        parts = [f"{left_name}={self.left_rows} rows, "
                 f"{right_name}={self.right_rows} rows"]
        if self.column_diffs:
            parts.append(self.column_diffs[0].describe())
        more = len(self.column_diffs) - 1 + self.truncated
        if more > 0:
            parts.append(f"(+{more} more differing cells)")
        return "; ".join(parts)


def _short(value, limit: int = 48) -> str:
    text = repr(value)
    return text if len(text) <= limit else text[:limit - 1] + "…"


def _as_rows(value) -> list:
    canon = canonicalize(value)
    if canon is None:
        return []
    if isinstance(canon, list):
        return canon
    return [canon]


def diff_results(left, right, max_diffs: int = 3) -> ResultDiff:
    """Per-column diff of two query results (any canonicalizable shape).

    Scalar results and ``None`` are treated as 1- and 0-row result sets
    so short reads diff through the same machinery as complex reads.
    """
    left_rows, right_rows = _as_rows(left), _as_rows(right)
    diff = ResultDiff(len(left_rows), len(right_rows))
    overflow = 0
    for index in range(max(len(left_rows), len(right_rows))):
        cell_diffs = _diff_row(index,
                               left_rows[index]
                               if index < len(left_rows) else _ABSENT,
                               right_rows[index]
                               if index < len(right_rows) else _ABSENT)
        for cell in cell_diffs:
            if len(diff.column_diffs) < max_diffs:
                diff.column_diffs.append(cell)
            else:
                overflow += 1
    diff.truncated = overflow
    return diff


_ABSENT = object()


def _diff_row(index: int, left, right) -> list[ColumnDiff]:
    if left is _ABSENT or right is _ABSENT:
        return [ColumnDiff(index, "<missing>",
                           "<absent>" if left is _ABSENT else left,
                           "<absent>" if right is _ABSENT else right)]
    if isinstance(left, dict) and isinstance(right, dict):
        diffs = []
        for column in sorted(set(left) | set(right)):
            a = left.get(column, "<absent>")
            b = right.get(column, "<absent>")
            if a != b:
                diffs.append(ColumnDiff(index, column, a, b))
        return diffs
    if left != right:
        return [ColumnDiff(index, "<row>", left, right)]
    return []
