"""Update-aware differential execution of the full workload.

The read-only checker in :mod:`repro.core.validation` compares query
results over the bulk-loaded network; this runner extends the oracle to
the *update* workload.  It replays the same timestamped update stream on
both SUTs in lockstep batches, interleaves curated complex reads and
short reads targeted at the entities each batch touched, and at
checkpoints compares a canonical full-graph state snapshot of the store
against the catalog — so a divergence is caught near the update that
introduced it, not at the end of the run.

On the first mismatch the runner also mints a
:class:`~repro.validation.replay.ReplayBundle` so the failure can be
reproduced (and shrunk) from nothing but seeds and indices.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field

from ..cache.memo import touched_refs
from ..curation.curator import CuratedWorkloadParams
from ..datagen.update_stream import SplitDataset
from ..workload.operations import EntityRef
from .canonical import ResultDiff, comparable, diff_results
from .replay import FailingCheck, ReplayBundle
from .snapshot import SectionDiff, diff_snapshots

#: Short reads taking a person ref / a message ref.
_PERSON_SHORTS = (1, 2, 3)
_MESSAGE_SHORTS = (4, 5, 6, 7)


@dataclass(frozen=True)
class PlanStep:
    """One step of a differential execution plan."""

    action: str                    #: "update" | "complex" | "short" | "checkpoint"
    index: int = -1                #: update-stream index (updates only)
    query_id: int = 0
    params: object = None          #: complex-read binding
    entity: EntityRef | None = None


def build_plan(split: SplitDataset, params: CuratedWorkloadParams,
               batch_size: int = 100, reads_per_batch: int = 3,
               shorts_per_batch: int = 4,
               snapshot_every: int = 4) -> list[PlanStep]:
    """Deterministic interleaving of updates, reads, and checkpoints.

    Updates run in stream order in batches of ``batch_size``.  After each
    batch the plan schedules ``reads_per_batch`` complex reads (rotating
    through the curated templates and bindings so every binding is
    exercised against evolving state) and short reads aimed at entities
    the batch's updates touched (via :func:`repro.cache.memo.touched_refs`
    — the same map the cache invalidation trusts).  Every
    ``snapshot_every`` batches, and at the end, a full state checkpoint.
    """
    plan: list[PlanStep] = []
    query_ids = sorted(params.by_query)
    num_batches = -(-len(split.updates) // batch_size) \
        if split.updates else 0
    read_cursor = 0
    for batch in range(num_batches):
        start = batch * batch_size
        ops = split.updates[start:start + batch_size]
        for offset in range(len(ops)):
            plan.append(PlanStep("update", index=start + offset))

        for __ in range(reads_per_batch):
            query_id = query_ids[read_cursor % len(query_ids)]
            bindings = params.by_query[query_id]
            binding = bindings[(read_cursor // len(query_ids))
                               % len(bindings)]
            plan.append(PlanStep("complex", query_id=query_id,
                                 params=binding))
            read_cursor += 1

        refs: list[EntityRef] = []
        seen = set()
        for op in ops:
            for ref in touched_refs(op):
                if ref not in seen:
                    seen.add(ref)
                    refs.append(ref)
        for i, ref in enumerate(refs[:shorts_per_batch]):
            pool = _PERSON_SHORTS if ref.kind == "person" \
                else _MESSAGE_SHORTS
            plan.append(PlanStep(
                "short", query_id=pool[(batch + i) % len(pool)],
                entity=ref))

        if (batch + 1) % snapshot_every == 0:
            plan.append(PlanStep("checkpoint"))
    if not plan or plan[-1].action != "checkpoint":
        plan.append(PlanStep("checkpoint"))
    return plan


@dataclass
class DifferentialMismatch:
    """One disagreement found during differential execution."""

    step: int                      #: index into the plan
    label: str                     #: "Q3", "S5", or "snapshot"
    params: object
    updates_applied: int
    diff: ResultDiff | None = None
    sections: list[SectionDiff] = field(default_factory=list)

    def describe(self) -> str:
        head = (f"{self.label} after {self.updates_applied} updates "
                f"(plan step {self.step}), params={self.params}")
        if self.diff is not None:
            return head + "\n    " + self.diff.describe(
                "store", "engine").replace("\n", "\n    ")
        body = "\n    ".join(
            section.describe("store", "engine")
            for section in self.sections)
        return head + ("\n    " + body if body else "")


@dataclass
class DifferentialReport:
    """Outcome of one differential run."""

    updates_applied: int = 0
    reads_checked: int = 0
    snapshots_checked: int = 0
    mismatches: list[DifferentialMismatch] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.mismatches


def run_differential(split: SplitDataset, params: CuratedWorkloadParams,
                     persons: int = 0, seed: int = 0,
                     batch_size: int = 100, reads_per_batch: int = 3,
                     shorts_per_batch: int = 4, snapshot_every: int = 4,
                     max_mismatches: int = 10,
                     left_factory=None, right_factory=None,
                     ) -> tuple[DifferentialReport, ReplayBundle | None]:
    """Replay the update stream on two SUTs with interleaved checks.

    Returns the report plus a replay bundle for the *first* mismatch
    (``None`` on a clean run).  ``persons``/``seed`` are recorded in the
    bundle so it reproduces standalone; pass the datagen configuration
    that produced ``split``.

    ``left_factory`` / ``right_factory`` build the two systems from the
    bulk network (default: graph store vs relational engine).  Any pair
    of unified-API SUTs works — the sharded-vs-single digest-invariance
    oracle passes ``ShardedStoreSUT.for_network`` as one side — and
    SUTs holding external resources are closed on the way out.
    """
    from ..core.sut import EngineSUT, StoreSUT

    left_factory = left_factory or StoreSUT.for_network
    right_factory = right_factory or EngineSUT.for_network
    left_sut = left_factory(split.bulk)
    try:
        right_sut = right_factory(split.bulk)
    except BaseException:
        _close_sut(left_sut)
        raise
    try:
        return _run_differential(
            split, params, left_sut, right_sut, persons=persons,
            seed=seed, batch_size=batch_size,
            reads_per_batch=reads_per_batch,
            shorts_per_batch=shorts_per_batch,
            snapshot_every=snapshot_every,
            max_mismatches=max_mismatches)
    finally:
        _close_sut(left_sut)
        _close_sut(right_sut)


def _close_sut(sut) -> None:
    close = getattr(sut, "close", None)
    if callable(close):
        close()


def _run_differential(split, params, left_sut, right_sut, *,
                      persons, seed, batch_size, reads_per_batch,
                      shorts_per_batch, snapshot_every, max_mismatches,
                      ) -> tuple[DifferentialReport, ReplayBundle | None]:
    from ..core.operation import ComplexRead, ShortRead, Update
    from .snapshot import sut_snapshot

    plan = build_plan(split, params, batch_size=batch_size,
                      reads_per_batch=reads_per_batch,
                      shorts_per_batch=shorts_per_batch,
                      snapshot_every=snapshot_every)
    report = DifferentialReport()
    bundle: ReplayBundle | None = None
    applied: list[int] = []

    def record(step_no: int, label: str, step_params: object,
               failing: FailingCheck, diff: ResultDiff | None = None,
               sections: list[SectionDiff] | None = None) -> None:
        nonlocal bundle
        report.mismatches.append(DifferentialMismatch(
            step=step_no, label=label, params=step_params,
            updates_applied=len(applied), diff=diff,
            sections=sections or []))
        if bundle is None:
            bundle = ReplayBundle(
                persons=persons, seed=seed,
                update_indices=list(applied), failing=failing,
                note=f"differential mismatch at plan step {step_no}")

    for step_no, step in enumerate(plan):
        if len(report.mismatches) >= max_mismatches:
            break
        if step.action == "update":
            op = Update(split.updates[step.index])
            left_sut.execute(op)
            right_sut.execute(op)
            applied.append(step.index)
            report.updates_applied += 1
        elif step.action == "complex":
            op = ComplexRead(step.query_id, step.params)
            left = comparable(step.query_id, left_sut.execute(op).value)
            right = comparable(step.query_id,
                               right_sut.execute(op).value)
            report.reads_checked += 1
            if left != right:
                record(step_no, f"Q{step.query_id}", step.params,
                       FailingCheck("complex", step.query_id,
                                    params=asdict(step.params)),
                       diff=diff_results(left, right))
        elif step.action == "short":
            op = ShortRead(step.query_id, step.entity)
            left = comparable(step.query_id, left_sut.execute(op).value)
            right = comparable(step.query_id,
                               right_sut.execute(op).value)
            report.reads_checked += 1
            if left != right:
                record(step_no, f"S{step.query_id}", step.entity,
                       FailingCheck("short", step.query_id,
                                    entity=step.entity.as_json()),
                       diff=diff_results(left, right))
        else:
            left_snap = sut_snapshot(left_sut)
            right_snap = sut_snapshot(right_sut)
            report.snapshots_checked += 1
            sections = diff_snapshots(left_snap, right_snap)
            if sections:
                record(step_no, "snapshot", None,
                       FailingCheck("checkpoint"), sections=sections)
    return report, bundle


def render_differential(report: DifferentialReport) -> str:
    """Human-readable differential summary."""
    lines = [
        f"differential validation: {report.updates_applied} updates, "
        f"{report.reads_checked} interleaved reads, "
        f"{report.snapshots_checked} state checkpoints",
        f"result: {'OK — systems agree' if report.ok else 'MISMATCHES'}",
    ]
    shown = report.mismatches[:10]
    for mismatch in shown:
        lines.append("  " + mismatch.describe().replace("\n", "\n  "))
    if len(report.mismatches) > len(shown):
        lines.append(f"  (+{len(report.mismatches) - len(shown)} "
                     "more mismatches)")
    return "\n".join(lines)
