"""Golden validation datasets (the LDBC driver's validation-set idiom).

The official driver can emit a *validation set* — ``(operation,
expected result)`` pairs recorded from a trusted run — that any other
implementation replays to prove conformance.  Here the golden file is a
versioned JSONL stream mirroring one differential plan:

* a header line pinning the datagen/curation configuration (the network
  is regenerated from it — golden files carry **no dataset**, only
  seeds and expectations);
* ``update`` records carrying only ``kind`` + ``due``: the payload is
  regenerated deterministically, and the pair doubles as an update-
  stream identity check (a datagen drift fails loudly at the exact
  stream position instead of corrupting later expectations);
* ``complex`` / ``short`` records with the binding and the canonical
  expected result;
* ``checkpoint`` records with the full-graph state digest.

``check_golden`` replays a file against either SUT; the first mismatch
produces a structured diff plus a shrunk replay bundle.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from dataclasses import replace as dc_replace

from ..curation.curator import ParameterCurator
from ..datagen.config import DatagenConfig
from ..datagen.pipeline import generate
from ..datagen.update_stream import SplitDataset, split_network
from ..errors import BenchmarkError
from ..workload.operations import EntityRef
from .canonical import ResultDiff, canonicalize, comparable, diff_results
from .differential import build_plan
from .replay import FailingCheck, ReplayBundle, ShrinkResult, shrink
from .snapshot import snapshot_digest, snapshot_store, sut_snapshot

GOLDEN_FORMAT = "snb-golden/1"


def _golden_plan(split: SplitDataset, header: dict):
    params = ParameterCurator(
        split.bulk, seed=header["curation_seed"]).curate(
        header["bindings_per_query"])
    return build_plan(split, params,
                      batch_size=header["batch_size"],
                      reads_per_batch=header["reads_per_batch"],
                      shorts_per_batch=header["shorts_per_batch"],
                      snapshot_every=header["snapshot_every"])


def _regenerate(header: dict, jobs: int = 1) -> SplitDataset:
    from ..datagen.config import ParallelConfig
    network = generate(DatagenConfig(num_persons=header["persons"],
                                     seed=header["seed"],
                                     parallel=ParallelConfig(jobs=jobs)))
    return split_network(network)


def create_golden(path: str, persons: int = 80, seed: int = 7,
                  curation_seed: int = 3, bindings_per_query: int = 2,
                  batch_size: int = 100, reads_per_batch: int = 3,
                  shorts_per_batch: int = 4,
                  snapshot_every: int = 4) -> int:
    """Record a golden dataset from the graph store (the reference SUT).

    Returns the number of records written (header excluded).
    """
    from ..core.operation import ComplexRead, ShortRead, Update
    from ..core.sut import StoreSUT

    header = {"format": GOLDEN_FORMAT, "persons": persons, "seed": seed,
              "curation_seed": curation_seed,
              "bindings_per_query": bindings_per_query,
              "batch_size": batch_size,
              "reads_per_batch": reads_per_batch,
              "shorts_per_batch": shorts_per_batch,
              "snapshot_every": snapshot_every}
    split = _regenerate(header)
    plan = _golden_plan(split, header)
    sut = StoreSUT.for_network(split.bulk)

    records = 0
    with open(path, "w", encoding="utf-8") as out:
        def emit(record: dict) -> None:
            out.write(json.dumps(record, sort_keys=True,
                                 separators=(",", ":"),
                                 ensure_ascii=True))
            out.write("\n")

        emit(header)
        for step in plan:
            if step.action == "update":
                operation = split.updates[step.index]
                sut.execute(Update(operation))
                emit({"op": "update", "kind": operation.kind.name,
                      "due": operation.due_time})
            elif step.action == "complex":
                value = sut.execute(
                    ComplexRead(step.query_id, step.params)).value
                emit({"op": "complex", "q": step.query_id,
                      "params": asdict(step.params),
                      "expect": comparable(step.query_id, value)})
            elif step.action == "short":
                value = sut.execute(
                    ShortRead(step.query_id, step.entity)).value
                emit({"op": "short", "q": step.query_id,
                      "entity": step.entity.as_json(),
                      "expect": canonicalize(value)})
            else:
                emit({"op": "checkpoint",
                      "digest": snapshot_digest(snapshot_store(
                          sut.store))})
            records += 1
    return records


@dataclass
class GoldenMismatch:
    """One deviation of the checked SUT from the golden expectation."""

    record: int                  #: line number in the golden file
    label: str                   #: "Q2", "S4", "snapshot", or "stream"
    params: object
    diff: ResultDiff | None = None
    detail: str = ""

    def describe(self) -> str:
        head = f"record {self.record} {self.label}"
        if self.params is not None:
            head += f" params={self.params}"
        if self.detail:
            head += f": {self.detail}"
        if self.diff is not None:
            head += "\n    " + self.diff.describe(
                "golden", "actual").replace("\n", "\n    ")
        return head


@dataclass
class GoldenCheckReport:
    """Outcome of replaying a golden dataset against one SUT."""

    sut: str
    updates_replayed: int = 0
    reads_checked: int = 0
    checkpoints_checked: int = 0
    mismatches: list[GoldenMismatch] = field(default_factory=list)
    bundle: ReplayBundle | None = None
    shrunk: ShrinkResult | None = None

    @property
    def ok(self) -> bool:
        return not self.mismatches


def check_golden(path: str, sut_name: str = "store",
                 shrink_on_mismatch: bool = True,
                 max_mismatches: int = 5,
                 jobs: int = 1, shards: int = 2) -> GoldenCheckReport:
    """Replay a golden dataset against one SUT and diff expectations.

    The shrink pass replays candidates against the *recorded*
    expectation, which is exact when the failure is update-independent
    (it shrinks to the empty prefix); for update-dependent failures the
    shrunk prefix is a strong hint, since dropping updates can change
    the expected result legitimately.  Checkpoint failures are never
    shrunk for the same reason.

    ``jobs`` regenerates the network process-parallel; goldens were
    recorded from serial runs, so a passing check doubles as a
    determinism proof for the parallel path.

    ``sut_name="sharded"`` replays against the multi-process sharded
    store (``shards`` workers): goldens were recorded single-process,
    so a pass proves the sharded read path and commit protocol are
    byte-for-byte faithful, and the shard-router canary (which drops a
    shard from scatter-gathers) must make this check FAIL.
    """
    from ..core.sut import EngineSUT, StoreSUT

    with open(path, encoding="utf-8") as handle:
        lines = [json.loads(line) for line in handle if line.strip()]
    if not lines or lines[0].get("format") != GOLDEN_FORMAT:
        raise BenchmarkError(
            f"{path}: not a {GOLDEN_FORMAT} golden dataset")
    header, records = lines[0], lines[1:]

    split = _regenerate(header, jobs=jobs)
    if sut_name == "store":
        sut = StoreSUT.for_network(split.bulk)
    elif sut_name == "engine":
        sut = EngineSUT.for_network(split.bulk)
    elif sut_name == "sharded":
        from ..shard import ShardedStoreSUT

        sut = ShardedStoreSUT.for_network(split.bulk, shards)
    else:
        raise BenchmarkError(f"unknown SUT {sut_name!r}")

    report = GoldenCheckReport(sut=sut_name)
    applied: list[int] = []

    def record_mismatch(line_no: int, label: str, params: object,
                        failing: FailingCheck,
                        diff: ResultDiff | None = None,
                        detail: str = "") -> None:
        if sut_name == "sharded":
            failing = dc_replace(failing, shards=shards)
        report.mismatches.append(GoldenMismatch(
            record=line_no, label=label, params=params, diff=diff,
            detail=detail))
        if report.bundle is None:
            report.bundle = ReplayBundle(
                persons=header["persons"], seed=header["seed"],
                update_indices=list(applied), failing=failing,
                note=f"golden check of {sut_name} failed at record "
                     f"{line_no}")

    try:
        _replay_golden(records, split, sut, sut_name, report, applied,
                       record_mismatch, max_mismatches, path)
    finally:
        close = getattr(sut, "close", None)
        if callable(close):
            close()

    if report.bundle is not None and shrink_on_mismatch \
            and report.bundle.failing.action != "checkpoint":
        report.shrunk = shrink(report.bundle, split=split)
    return report


def _replay_golden(records, split, sut, sut_name, report, applied,
                   record_mismatch, max_mismatches, path) -> None:
    from ..core.operation import ComplexRead, ShortRead, Update
    from ..queries.registry import COMPLEX_QUERIES

    update_cursor = 0
    for line_no, record in enumerate(records, start=2):
        if len(report.mismatches) >= max_mismatches:
            break
        op_kind = record["op"]
        if op_kind == "update":
            if update_cursor >= len(split.updates):
                report.mismatches.append(GoldenMismatch(
                    record=line_no, label="stream", params=None,
                    detail="golden file has more updates than the "
                           "regenerated stream"))
                break
            operation = split.updates[update_cursor]
            if operation.kind.name != record["kind"] \
                    or operation.due_time != record["due"]:
                report.mismatches.append(GoldenMismatch(
                    record=line_no, label="stream", params=None,
                    detail=f"update stream diverged: golden "
                           f"{record['kind']}@{record['due']}, "
                           f"regenerated {operation.kind.name}"
                           f"@{operation.due_time} — datagen is no "
                           f"longer deterministic for this config"))
                break
            sut.execute(Update(operation))
            applied.append(update_cursor)
            update_cursor += 1
            report.updates_replayed += 1
        elif op_kind == "complex":
            query_id = record["q"]
            params_type = COMPLEX_QUERIES[query_id].params_type
            binding = params_type(**record["params"])
            value = sut.execute(ComplexRead(query_id, binding)).value
            actual = comparable(query_id, value)
            report.reads_checked += 1
            if actual != record["expect"]:
                record_mismatch(
                    line_no, f"Q{query_id}", record["params"],
                    FailingCheck("complex", query_id,
                                 params=record["params"], sut=sut_name,
                                 expected=record["expect"]),
                    diff=diff_results(record["expect"], actual))
        elif op_kind == "short":
            query_id = record["q"]
            entity = EntityRef.of(record["entity"])
            value = sut.execute(ShortRead(query_id, entity)).value
            actual = canonicalize(value)
            report.reads_checked += 1
            if actual != record["expect"]:
                record_mismatch(
                    line_no, f"S{query_id}", record["entity"],
                    FailingCheck("short", query_id,
                                 entity=record["entity"], sut=sut_name,
                                 expected=record["expect"]),
                    diff=diff_results(record["expect"], actual))
        elif op_kind == "checkpoint":
            actual = snapshot_digest(sut_snapshot(sut))
            report.checkpoints_checked += 1
            if actual != record["digest"]:
                record_mismatch(
                    line_no, "snapshot", None,
                    FailingCheck("checkpoint", sut=sut_name,
                                 expected=record["digest"]),
                    detail=f"state digest {actual} != golden "
                           f"{record['digest']}")
        else:
            raise BenchmarkError(
                f"{path}:{line_no}: unknown record op {op_kind!r}")


def render_golden_check(report: GoldenCheckReport) -> str:
    """Human-readable golden-check summary."""
    lines = [
        f"golden check [{report.sut}]: {report.updates_replayed} "
        f"updates replayed, {report.reads_checked} reads, "
        f"{report.checkpoints_checked} checkpoints",
        f"result: {'OK — matches golden' if report.ok else 'MISMATCHES'}",
    ]
    for mismatch in report.mismatches:
        lines.append("  " + mismatch.describe().replace("\n", "\n  "))
    if report.shrunk is not None:
        lines.append(
            f"  shrunk counterexample: {report.shrunk.shrunk_updates} "
            f"of {report.shrunk.original_updates} updates "
            f"({report.shrunk.probes} probes)")
    return "\n".join(lines)
