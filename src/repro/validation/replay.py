"""Deterministic replay bundles and the greedy counterexample shrinker.

When any validation surface finds a mismatch, it persists a **replay
bundle**: the datagen seed, the indices of the update-stream prefix that
was applied, and the failing check itself (query + binding, or a state
checkpoint).  Because datagen is a pure function of ``(persons, seed)``,
the bundle alone reproduces the failure on a fresh process — no pickles,
no dataset files.

:func:`shrink` then minimizes the failing update prefix with a greedy
delta-debugging pass (ddmin-style chunk removal) so the reported
counterexample is the smallest op sequence that still disagrees: a bug
independent of updates shrinks to an empty prefix in one probe.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace

from ..datagen.config import DatagenConfig
from ..datagen.pipeline import generate
from ..datagen.update_stream import SplitDataset, split_network
from ..errors import BenchmarkError
from ..workload.operations import EntityRef
from .canonical import (
    ColumnDiff,
    ResultDiff,
    canonicalize,
    comparable,
    diff_results,
)

REPLAY_FORMAT = "snb-replay/1"


@dataclass(frozen=True)
class FailingCheck:
    """The check that disagreed, in replayable (JSON-able) form."""

    action: str                 #: "complex" | "short" | "checkpoint"
    query_id: int = 0
    params: dict | None = None  #: complex-read binding as a field dict
    entity: list | None = None  #: short-read target as ``[kind, id]``
    #: Which SUT to replay against a recorded expectation; ``None``
    #: means differential mode (store vs engine, no expectation).
    sut: str | None = None
    #: Expected canonical result (or checkpoint digest); ``None`` in
    #: differential mode.
    expected: object = None
    #: Worker count when ``sut == "sharded"``.
    shards: int = 0

    @property
    def label(self) -> str:
        if self.action == "complex":
            return f"Q{self.query_id}"
        if self.action == "short":
            return f"S{self.query_id}"
        return "snapshot"

    def to_json(self) -> dict:
        return {"action": self.action, "query_id": self.query_id,
                "params": self.params, "entity": self.entity,
                "sut": self.sut, "expected": self.expected,
                "shards": self.shards}

    @classmethod
    def from_json(cls, data: dict) -> "FailingCheck":
        return cls(action=data["action"],
                   query_id=data.get("query_id", 0),
                   params=data.get("params"),
                   entity=data.get("entity"),
                   sut=data.get("sut"),
                   expected=data.get("expected"),
                   shards=data.get("shards", 0))


@dataclass
class ReplayBundle:
    """Everything needed to reproduce one validation mismatch."""

    persons: int
    seed: int
    update_indices: list[int]
    failing: FailingCheck
    note: str = ""
    format: str = REPLAY_FORMAT

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump({"format": self.format, "persons": self.persons,
                       "seed": self.seed,
                       "update_indices": self.update_indices,
                       "failing": self.failing.to_json(),
                       "note": self.note},
                      handle, indent=2, sort_keys=True)
            handle.write("\n")

    @classmethod
    def load(cls, path: str) -> "ReplayBundle":
        with open(path, encoding="utf-8") as handle:
            data = json.load(handle)
        if data.get("format") != REPLAY_FORMAT:
            raise BenchmarkError(
                f"unsupported replay bundle format {data.get('format')!r}")
        return cls(persons=data["persons"], seed=data["seed"],
                   update_indices=list(data["update_indices"]),
                   failing=FailingCheck.from_json(data["failing"]),
                   note=data.get("note", ""))


# ---------------------------------------------------------------------------
# reproduction
# ---------------------------------------------------------------------------

def _build_suts(split: SplitDataset, failing: FailingCheck):
    """Fresh (store-side SUT, engine SUT) pair — either may be None
    when the failing check replays against a recorded expectation.  A
    ``"sharded"`` check spawns the multi-process store in the store
    slot (it *is* a store, just partitioned)."""
    from ..core.sut import EngineSUT, StoreSUT

    if failing.sut == "sharded":
        from ..shard import ShardedStoreSUT

        store = ShardedStoreSUT.for_network(split.bulk,
                                            failing.shards or 2)
    elif failing.sut in (None, "store"):
        store = StoreSUT.for_network(split.bulk)
    else:
        store = None
    engine = EngineSUT.for_network(split.bulk) \
        if failing.sut in (None, "engine") else None
    return store, engine


def _check_op(failing: FailingCheck):
    """The typed operation a failing read check replays."""
    from ..core.operation import ComplexRead, ShortRead
    from ..queries.registry import COMPLEX_QUERIES

    if failing.action == "complex":
        params_type = COMPLEX_QUERIES[failing.query_id].params_type
        return ComplexRead(failing.query_id,
                           params_type(**failing.params))
    if failing.action == "short":
        return ShortRead(failing.query_id,
                         EntityRef.of(failing.entity))
    raise BenchmarkError(f"not a read check: {failing.action}")


def run_check(split: SplitDataset, update_indices: list[int],
              failing: FailingCheck) -> ResultDiff | None:
    """Replay a prefix + one check on fresh SUTs; diff or ``None``.

    Differential mode (``failing.sut is None``) compares store against
    engine; expectation mode compares the named SUT's result (or state
    digest) against ``failing.expected``.
    """
    from ..core.operation import Update
    from .snapshot import diff_snapshots, snapshot_digest, sut_snapshot

    store, engine = _build_suts(split, failing)
    try:
        updates = split.updates
        for index in update_indices:
            op = Update(updates[index])
            if store is not None:
                store.execute(op)
            if engine is not None:
                engine.execute(op)

        if failing.action == "checkpoint":
            left = sut_snapshot(store if store is not None else engine)
            if failing.sut is None:
                right = sut_snapshot(engine)
                sections = diff_snapshots(left, right)
                if not sections:
                    return None
                diff = ResultDiff(len(left), len(right))
                diff.column_diffs = [
                    ColumnDiff(i, section.section,
                               section.only_left[:1],
                               section.only_right[:1])
                    for i, section in enumerate(sections[:3])]
                diff.truncated = max(len(sections) - 3, 0)
                return diff
            actual = snapshot_digest(left)
            if actual == failing.expected:
                return None
            return ResultDiff(1, 1, [ColumnDiff(0, "<state digest>",
                                                failing.expected,
                                                actual)])

        op = _check_op(failing)
        if failing.sut is None:
            left = comparable(failing.query_id, store.execute(op).value)
            right = comparable(failing.query_id,
                               engine.execute(op).value)
        else:
            sut = engine if failing.sut == "engine" else store
            left = failing.expected
            right = comparable(failing.query_id,
                               canonicalize(sut.execute(op).value))
        if left == right:
            return None
        return diff_results(left, right)
    finally:
        for sut in (store, engine):
            close = getattr(sut, "close", None)
            if callable(close):
                close()


def reproduce(bundle: ReplayBundle,
              split: SplitDataset | None = None) -> ResultDiff | None:
    """Reproduce a bundle from scratch; the diff if it still fails."""
    if split is None:
        network = generate(DatagenConfig(num_persons=bundle.persons,
                                         seed=bundle.seed))
        split = split_network(network)
    return run_check(split, bundle.update_indices, bundle.failing)


# ---------------------------------------------------------------------------
# shrinking
# ---------------------------------------------------------------------------

@dataclass
class ShrinkResult:
    """Outcome of a shrink pass."""

    bundle: ReplayBundle
    original_updates: int
    probes: int
    diff: ResultDiff | None = field(default=None, repr=False)

    @property
    def shrunk_updates(self) -> int:
        return len(self.bundle.update_indices)


def shrink(bundle: ReplayBundle, split: SplitDataset | None = None,
           max_probes: int = 120) -> ShrinkResult:
    """Greedily minimize the failing update prefix (ddmin-style).

    Each probe replays a candidate subsequence on fresh SUTs; a removal
    is kept whenever the mismatch persists.  The empty prefix is probed
    first, so update-independent failures cost exactly one probe.
    """
    if split is None:
        network = generate(DatagenConfig(num_persons=bundle.persons,
                                         seed=bundle.seed))
        split = split_network(network)
    indices = list(bundle.update_indices)
    probes = 0
    diff = None

    def fails(candidate: list[int]):
        nonlocal probes
        probes += 1
        return run_check(split, candidate, bundle.failing)

    empty_diff = fails([])
    if empty_diff is not None:
        final = replace(bundle, update_indices=[],
                        note=(bundle.note + " [shrunk: failure is "
                              "update-independent]").strip())
        return ShrinkResult(final, len(bundle.update_indices), probes,
                            empty_diff)

    granularity = 2
    while len(indices) >= 2 and probes < max_probes:
        chunk = max(1, -(-len(indices) // granularity))
        removed = False
        for start in range(0, len(indices), chunk):
            candidate = indices[:start] + indices[start + chunk:]
            result = fails(candidate)
            if result is not None:
                indices = candidate
                diff = result
                granularity = max(granularity - 1, 2)
                removed = True
                break
            if probes >= max_probes:
                break
        if not removed:
            if chunk == 1:
                break
            granularity = min(len(indices), granularity * 2)
    final = replace(bundle, update_indices=indices,
                    note=(bundle.note
                          + f" [shrunk from "
                            f"{len(bundle.update_indices)} updates in "
                            f"{probes} probes]").strip())
    return ShrinkResult(final, len(bundle.update_indices), probes, diff)
