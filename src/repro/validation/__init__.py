"""Full-workload differential validation (the driver's validation mode).

This package turns the read-only cross-SUT checker into a real
validation subsystem:

* :mod:`~repro.validation.canonical` — shared result canonicalization,
  digests, and structured per-column diffs;
* :mod:`~repro.validation.snapshot` — canonical full-graph state
  snapshots derivable from both SUTs (the state oracle);
* :mod:`~repro.validation.differential` — update-aware differential
  execution: both SUTs replay the update stream in lockstep with
  interleaved reads and state checkpoints;
* :mod:`~repro.validation.golden` — recorded golden datasets
  (``repro validate --create`` / ``--check``);
* :mod:`~repro.validation.replay` — deterministic replay bundles and
  the greedy counterexample shrinker;
* :mod:`~repro.validation.canary` — the mutation canary proving the
  harness detects seeded bugs;
* :mod:`~repro.validation.chaos` — the chaos soak: a fault-perturbed
  driver run must converge to the fault-free final state digest
  (``repro chaos``), with its own fault canary (``--canary-faults``).
"""

from .canary import canary_bug
from .chaos import (
    ChaosReport,
    chaos_canary,
    clean_run_digest,
    render_chaos,
    run_chaos,
)
from .canonical import (
    ColumnDiff,
    ResultDiff,
    canonical_json,
    canonicalize,
    comparable,
    diff_results,
    digest,
)
from .differential import (
    DifferentialMismatch,
    DifferentialReport,
    PlanStep,
    build_plan,
    render_differential,
    run_differential,
)
from .golden import (
    GOLDEN_FORMAT,
    GoldenCheckReport,
    GoldenMismatch,
    check_golden,
    create_golden,
    render_golden_check,
)
from .replay import (
    REPLAY_FORMAT,
    FailingCheck,
    ReplayBundle,
    ShrinkResult,
    reproduce,
    run_check,
    shrink,
)
from .snapshot import (
    SECTIONS,
    SectionDiff,
    diff_snapshots,
    snapshot_catalog,
    snapshot_digest,
    snapshot_store,
)

__all__ = [
    "ColumnDiff",
    "ResultDiff", "canonical_json", "canonicalize", "comparable",
    "diff_results", "digest",
    "DifferentialMismatch", "DifferentialReport", "PlanStep",
    "build_plan", "render_differential", "run_differential",
    "GOLDEN_FORMAT", "GoldenCheckReport", "GoldenMismatch",
    "check_golden", "create_golden", "render_golden_check",
    "REPLAY_FORMAT", "FailingCheck", "ReplayBundle", "ShrinkResult",
    "reproduce", "run_check", "shrink",
    "SECTIONS", "SectionDiff", "diff_snapshots", "snapshot_catalog",
    "snapshot_digest", "snapshot_store",
    "canary_bug",
    "ChaosReport", "chaos_canary", "clean_run_digest", "render_chaos",
    "run_chaos",
]
