"""Mutation canary: inject a known query bug to prove the harness works.

A validation harness that never fires is indistinguishable from one that
cannot fire.  :func:`canary_bug` deliberately corrupts one SUT's Q2
(drops the first result row) and S4 (corrupts the message content) by
patching the query-registry entries the SUTs look up per call, runs
whatever validation the caller wraps, then restores the registries.  CI
asserts the harness *fails* under the canary — with a shrunk, replayable
counterexample — so a silent oracle regression breaks the build.
"""

from __future__ import annotations

import dataclasses
from contextlib import contextmanager

from ..errors import BenchmarkError


def _drop_first_row(run):
    def buggy(*args, **kwargs):
        rows = run(*args, **kwargs)
        return rows[1:] if rows else rows
    return buggy


def _corrupt_content(run):
    def buggy(*args, **kwargs):
        result = run(*args, **kwargs)
        if result is None:
            return result
        return dataclasses.replace(
            result, content=result.content + " [canary]")
    return buggy


@contextmanager
def canary_bug(sut: str = "engine"):
    """Temporarily seed a result bug into one SUT's Q2 and S4.

    Both SUTs resolve queries through registry dicts at call time, so
    swapping the dict entries injects the bug without touching any SUT
    instance; the original entries are restored on exit even if the
    wrapped validation raises.
    """
    if sut == "engine":
        from ..engine import snb_queries

        saved = (snb_queries.ENGINE_COMPLEX[2], snb_queries.ENGINE_SHORT[4])
        snb_queries.ENGINE_COMPLEX[2] = _drop_first_row(saved[0])
        snb_queries.ENGINE_SHORT[4] = _corrupt_content(saved[1])
        try:
            yield
        finally:
            snb_queries.ENGINE_COMPLEX[2] = saved[0]
            snb_queries.ENGINE_SHORT[4] = saved[1]
    elif sut == "store":
        from ..queries.registry import COMPLEX_QUERIES, SHORT_QUERIES

        saved_q2, saved_s4 = COMPLEX_QUERIES[2], SHORT_QUERIES[4]
        COMPLEX_QUERIES[2] = dataclasses.replace(
            saved_q2, run=_drop_first_row(saved_q2.run))
        SHORT_QUERIES[4] = dataclasses.replace(
            saved_s4, run=_corrupt_content(saved_s4.run))
        try:
            yield
        finally:
            COMPLEX_QUERIES[2] = saved_q2
            SHORT_QUERIES[4] = saved_s4
    elif sut == "sharded":
        # Shard-router mutation: drop shard 0 from every scatter-gather,
        # simulating a routing bug that silently loses a partition.
        # Golden reads see missing rows and checkpoint digests diverge,
        # so ``validate --check --sut sharded --canary`` must FAIL.
        from ..shard import router as shard_router

        saved_drop = shard_router._canary_drop_shard
        shard_router._canary_drop_shard = 0
        try:
            yield
        finally:
            shard_router._canary_drop_shard = saved_drop
    else:
        raise BenchmarkError(f"unknown canary target {sut!r}")
