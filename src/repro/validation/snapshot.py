"""Canonical full-graph state snapshots of both SUTs.

A snapshot maps the *entire* visible database state — whichever SUT it
came from — onto one canonical relational shape: a dict of section name
→ sorted list of rows (rows are plain lists).  The graph store's
vertices/edges and the relational catalog's tables project onto the same
sections, so ``snapshot_store(store) == snapshot_catalog(catalog)``
holds exactly when the two systems hold the same social network — the
state oracle the differential runner checks at checkpoints.

Canonicalization choices (all documented, all shared):

* undirected ``knows`` edges (stored twice in both systems) keep only
  the ``person1 < person2`` direction;
* posts and comments merge into one ``message`` section with the
  relational conventions — ``forum_id`` 0 and ``language`` ``""`` for
  comments, ``root_post_id`` = own id and ``reply_of_id`` 0 for posts,
  photo posts fall back to their image file as content;
* message ``location_ip`` / ``browser_used`` are excluded: the columnar
  schema genuinely does not store them (a layout decision the paper
  permits), so they cannot be part of a cross-system oracle.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..engine.catalog import Catalog
from ..store.graph import GraphStore
from ..store.loader import EdgeLabel, VertexLabel
from .canonical import canonical_json, digest

#: Section order of a canonical snapshot (stable for rendering).
SECTIONS = (
    "person", "person_email", "person_language", "person_interest",
    "study_at", "work_at", "knows", "forum", "forum_tag", "membership",
    "message", "message_tag", "likes",
    "place", "organisation", "tag", "tagclass",
)


def _sorted(rows) -> list[list]:
    return sorted(rows, key=canonical_json)


def snapshot_store(store: GraphStore) -> dict[str, list]:
    """Canonical state snapshot of the graph store (one read txn)."""
    with store.transaction() as txn:
        snap: dict[str, list] = {}
        snap["person"] = _sorted(
            [vid, p["first_name"], p["last_name"], p["gender"],
             p["birthday"], p["creation_date"], p["city_id"],
             p["country_id"], p["browser_used"], p["location_ip"]]
            for vid, p in txn.vertices(VertexLabel.PERSON))
        snap["person_email"] = _sorted(
            [vid, seq, email]
            for vid, p in txn.vertices(VertexLabel.PERSON)
            for seq, email in enumerate(p["emails"]))
        snap["person_language"] = _sorted(
            [vid, seq, language]
            for vid, p in txn.vertices(VertexLabel.PERSON)
            for seq, language in enumerate(p["languages"]))
        snap["person_interest"] = _sorted(
            [src, dst]
            for src, dst, __ in txn.edges(EdgeLabel.HAS_INTEREST))
        snap["study_at"] = _sorted(
            [src, dst, p["class_year"]]
            for src, dst, p in txn.edges(EdgeLabel.STUDY_AT))
        snap["work_at"] = _sorted(
            [src, dst, p["work_from"]]
            for src, dst, p in txn.edges(EdgeLabel.WORK_AT))
        snap["knows"] = _sorted(
            [src, dst, p["creation_date"]]
            for src, dst, p in txn.edges(EdgeLabel.KNOWS) if src < dst)
        snap["forum"] = _sorted(
            [vid, p["title"], p["creation_date"], p["moderator_id"]]
            for vid, p in txn.vertices(VertexLabel.FORUM))
        snap["forum_tag"] = _sorted(
            [src, dst]
            for src, dst, __ in txn.edges(EdgeLabel.FORUM_HAS_TAG))
        snap["membership"] = _sorted(
            [src, dst, p["joined_date"]]
            for src, dst, p in txn.edges(EdgeLabel.HAS_MEMBER))
        messages = [
            [vid, True, p["author_id"], p["forum_id"],
             p["creation_date"], p["content"] or (p["image_file"] or ""),
             p["length"], p["country_id"], vid, 0, p["language"]]
            for vid, p in txn.vertices(VertexLabel.POST)]
        messages += [
            [vid, False, p["author_id"], 0, p["creation_date"],
             p["content"], p["length"], p["country_id"],
             p["root_post_id"], p["reply_of_id"], ""]
            for vid, p in txn.vertices(VertexLabel.COMMENT)]
        snap["message"] = _sorted(messages)
        snap["message_tag"] = _sorted(
            [src, dst] for src, dst, __ in txn.edges(EdgeLabel.HAS_TAG))
        snap["likes"] = _sorted(
            [src, dst, p["creation_date"], p["is_post"]]
            for src, dst, p in txn.edges(EdgeLabel.LIKES))
        snap["place"] = _sorted(
            [vid, p["name"], p["type"], p["part_of"]]
            for vid, p in txn.vertices(VertexLabel.PLACE))
        snap["organisation"] = _sorted(
            [vid, p["name"], p["type"], p["location_id"]]
            for vid, p in txn.vertices(VertexLabel.ORGANISATION))
        snap["tag"] = _sorted(
            [vid, p["name"], p["class_id"]]
            for vid, p in txn.vertices(VertexLabel.TAG))
        snap["tagclass"] = _sorted(
            [vid, p["name"], p["parent_id"]]
            for vid, p in txn.vertices(VertexLabel.TAG_CLASS))
        return snap


def snapshot_catalog(catalog: Catalog) -> dict[str, list]:
    """Canonical state snapshot of the relational catalog."""
    def rows(table: str) -> list[list]:
        return [list(row) for row in catalog.table(table).rows]

    snap: dict[str, list] = {}
    snap["person"] = _sorted(rows("person"))
    snap["person_email"] = _sorted(rows("person_email"))
    snap["person_language"] = _sorted(rows("person_language"))
    snap["person_interest"] = _sorted(rows("person_tag"))
    snap["study_at"] = _sorted(rows("study_at"))
    snap["work_at"] = _sorted(rows("work_at"))
    snap["knows"] = _sorted(
        list(row) for row in catalog.table("knows").rows
        if row[0] < row[1])
    snap["forum"] = _sorted(rows("forum"))
    snap["forum_tag"] = _sorted(rows("forum_tag"))
    snap["membership"] = _sorted(rows("membership"))
    # MESSAGE columns: (id, creator_id, forum_id, creation_date, content,
    # length, language, country_id, is_post, root_post_id, reply_of_id)
    # → canonical [id, is_post, creator, forum, date, content, length,
    #              country, root, reply_of, language].
    snap["message"] = _sorted(
        [row[0], bool(row[8]), row[1], row[2], row[3], row[4], row[5],
         row[7], row[9], row[10], row[6]]
        for row in catalog.table("message").rows)
    snap["message_tag"] = _sorted(rows("message_tag"))
    snap["likes"] = _sorted(
        [row[0], row[1], row[2], bool(row[3])]
        for row in catalog.table("likes").rows)
    snap["place"] = _sorted(rows("place"))
    snap["organisation"] = _sorted(rows("organisation"))
    snap["tag"] = _sorted(rows("tag"))
    snap["tagclass"] = _sorted(rows("tagclass"))
    return snap


def snapshot_digest(snapshot: dict[str, list]) -> str:
    """Stable content digest of a canonical snapshot."""
    return digest(snapshot)


def sut_snapshot(sut) -> dict[str, list]:
    """Canonical snapshot of any SUT, dispatching on what it exposes.

    A SUT owning its own snapshot protocol (the sharded store, whose
    state lives in worker processes) provides ``snapshot()``; the
    in-process SUTs expose their backing ``store`` / ``catalog``.
    """
    snapshot = getattr(sut, "snapshot", None)
    if callable(snapshot):
        return snapshot()
    store = getattr(sut, "store", None)
    if store is not None:
        return snapshot_store(store)
    catalog = getattr(sut, "catalog", None)
    if catalog is not None:
        return snapshot_catalog(catalog)
    raise TypeError(
        f"cannot snapshot {type(sut).__name__}: no snapshot()/store/"
        f"catalog")


@dataclass
class SectionDiff:
    """Disagreement within one snapshot section."""

    section: str
    left_count: int
    right_count: int
    #: Example rows present on exactly one side (truncated).
    only_left: list = field(default_factory=list)
    only_right: list = field(default_factory=list)
    #: Rows on one side only, beyond the examples kept.
    truncated: int = 0

    def describe(self, left_name: str = "left",
                 right_name: str = "right") -> str:
        parts = [f"{self.section}: {left_name}={self.left_count} rows, "
                 f"{right_name}={self.right_count} rows"]
        if self.only_left:
            parts.append(f"only in {left_name}: {self.only_left[0]}")
        if self.only_right:
            parts.append(f"only in {right_name}: {self.only_right[0]}")
        more = max(len(self.only_left) - 1, 0) \
            + max(len(self.only_right) - 1, 0) + self.truncated
        if more:
            parts.append(f"(+{more} more differing rows)")
        return "; ".join(parts)


def diff_snapshots(left: dict[str, list], right: dict[str, list],
                   max_rows: int = 3) -> list[SectionDiff]:
    """Per-section row diff of two canonical snapshots."""
    diffs = []
    for section in SECTIONS:
        left_rows = left.get(section, [])
        right_rows = right.get(section, [])
        if left_rows == right_rows:
            continue
        left_set = {canonical_json(row) for row in left_rows}
        right_set = {canonical_json(row) for row in right_rows}
        only_left = sorted(left_set - right_set)
        only_right = sorted(right_set - left_set)
        truncated = max(len(only_left) - max_rows, 0) \
            + max(len(only_right) - max_rows, 0)
        diffs.append(SectionDiff(
            section=section,
            left_count=len(left_rows), right_count=len(right_rows),
            only_left=only_left[:max_rows],
            only_right=only_right[:max_rows],
            truncated=truncated))
    return diffs
