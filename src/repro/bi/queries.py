"""Draft SNB-BI queries over the relational catalog.

Each query is TPC-H-style: a scan of a fact table (message — by far the
largest), grouped along dimensions (time, country, tag), one of them
with a graph-traversal predicate (friend count), which is exactly the
flavor the paper sketches for SNB-BI.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..curation.buckets import bucket_key
from ..engine.catalog import Catalog
from ..engine.operators import Filter, GroupAggregate, Scan
from ..sim_time import MILLIS_PER_MONTH, date_from_millis


@dataclass(frozen=True)
class Bi1Row:
    """Message volume per (year, is_post) group."""

    year: int
    is_post: bool
    message_count: int
    total_length: int
    average_length: float


def bi1_posting_summary(catalog: Catalog) -> list[Bi1Row]:
    """BI-1: full message scan grouped by year and message kind."""
    message = catalog.table("message")
    # Year extraction happens in a projection-like wrapper row.
    rows: dict[tuple[int, bool], list[int]] = {}
    scan = Scan(message)
    for row in scan:
        year = date_from_millis(row[3]).year
        key = (year, row[8])
        state = rows.get(key)
        if state is None:
            rows[key] = [1, row[5]]
        else:
            state[0] += 1
            state[1] += row[5]
    result = [Bi1Row(year, is_post, count, total, total / count)
              for (year, is_post), (count, total)
              in rows.items()]
    result.sort(key=lambda r: (r.year, not r.is_post))
    return result


@dataclass(frozen=True)
class Bi2Row:
    """Tag activity across two consecutive month windows."""

    tag_name: str
    count_window_a: int
    count_window_b: int

    @property
    def delta(self) -> int:
        return self.count_window_b - self.count_window_a


def bi2_tag_evolution(catalog: Catalog, month_start: int,
                      limit: int = 20) -> list[Bi2Row]:
    """BI-2: tag popularity change between two consecutive months."""
    window_a = (month_start, month_start + MILLIS_PER_MONTH)
    window_b = (window_a[1], window_a[1] + MILLIS_PER_MONTH)
    message = catalog.table("message")
    message_tag = catalog.table("message_tag")
    counts: dict[int, list[int]] = {}
    for slot, (low, high) in enumerate((window_a, window_b)):
        for row in message.range_scan(low, high - 1):
            for tag_row in message_tag.probe("message_id", row[0]):
                state = counts.setdefault(tag_row[1], [0, 0])
                state[slot] += 1
    tag = catalog.table("tag")
    rows = [Bi2Row(tag.by_pk(tag_id)[1], a, b)
            for tag_id, (a, b) in counts.items()]
    rows.sort(key=lambda r: (-abs(r.delta), r.tag_name))
    return rows[:limit]


@dataclass(frozen=True)
class Bi3Row:
    """Message count per (country, tag) group."""

    country_name: str
    tag_name: str
    message_count: int


def bi3_popular_topics_by_country(catalog: Catalog, top_per_country: int
                                  = 3) -> list[Bi3Row]:
    """BI-3: the most discussed tags per message country."""
    message = catalog.table("message")
    message_tag = catalog.table("message_tag")
    counts: dict[tuple[int, int], int] = {}
    for row in message.rows:
        for tag_row in message_tag.probe("message_id", row[0]):
            key = (row[7], tag_row[1])
            counts[key] = counts.get(key, 0) + 1
    by_country: dict[int, list[tuple[int, int]]] = {}
    for (country_id, tag_id), count in counts.items():
        by_country.setdefault(country_id, []).append((count, tag_id))
    place = catalog.table("place")
    tag = catalog.table("tag")
    rows = []
    for country_id, tag_counts in by_country.items():
        tag_counts.sort(key=lambda pair: (-pair[0], pair[1]))
        for count, tag_id in tag_counts[:top_per_country]:
            rows.append(Bi3Row(place.by_pk(country_id)[1],
                               tag.by_pk(tag_id)[1], count))
    rows.sort(key=lambda r: (r.country_name, -r.message_count,
                             r.tag_name))
    return rows


@dataclass(frozen=True)
class Bi4Row:
    """An influential poster: well-connected and prolific."""

    person_id: int
    first_name: str
    last_name: str
    friend_count: int
    message_count: int


def bi4_influential_posters(catalog: Catalog, min_friends: int,
                            limit: int = 10) -> list[Bi4Row]:
    """BI-4: top posters among persons with ≥ ``min_friends`` friends.

    The graph-traversal predicate of the draft workload: the group-by
    over the message fact table is restricted by a friendship-degree
    condition evaluated on the knows graph.
    """
    message = catalog.table("message")
    counts = GroupAggregate(Scan(message), ["creator_id"],
                            {"messages": ("count", None)})
    knows = catalog.table("knows")
    person = catalog.table("person")
    rows = []
    for creator_id, message_count in counts:
        friend_count = len(knows.probe("person1_id", creator_id))
        if friend_count < min_friends:
            continue
        row = person.by_pk(creator_id)
        rows.append(Bi4Row(creator_id, row[1], row[2], friend_count,
                           message_count))
    rows.sort(key=lambda r: (-r.message_count, r.person_id))
    return rows[:limit]
