"""SNB-BI workload preview (paper §1, second workload).

"This workload consists of a set of queries that access a large
percentage of all entities in the dataset (the 'fact tables'), and
groups these in various dimensions ... the distinguishing factor is the
presence of graph traversal predicates and recursion."  SNB-BI was a
working draft when the paper was published; this package implements four
draft queries in that style over the relational engine's catalog,
exercising full scans of the message fact table, multi-dimensional
group-bys, and a friendship-graph predicate.
"""

from .queries import (
    bi1_posting_summary,
    bi2_tag_evolution,
    bi3_popular_topics_by_country,
    bi4_influential_posters,
)

__all__ = [
    "bi1_posting_summary",
    "bi2_tag_evolution",
    "bi3_popular_topics_by_country",
    "bi4_influential_posters",
]
