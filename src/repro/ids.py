"""Entity identifier spaces.

Every entity kind gets a disjoint 64-bit id space so that ids are globally
unique across kinds (handy for likes/replies that reference "messages",
which may be posts or comments).

The paper (footnote 3) notes that entity URIs encode the creation timestamp
in an order-preserving way so identifiers correlate with time.  We reproduce
that: within a kind, ids are assigned in an order that follows the time
dimension, by composing ``(kind_tag << 56) | serial`` where serials are
handed out in creation-time order by the generator stages.
"""

from __future__ import annotations

from enum import IntEnum

from .errors import SchemaError

_SERIAL_BITS = 56
_SERIAL_MASK = (1 << _SERIAL_BITS) - 1


class EntityKind(IntEnum):
    """Tags identifying each entity id space."""

    PERSON = 1
    FORUM = 2
    POST = 3
    COMMENT = 4
    TAG = 5
    TAG_CLASS = 6
    PLACE = 7
    ORGANISATION = 8


def make_id(kind: EntityKind, serial: int) -> int:
    """Compose a globally unique id from a kind tag and a serial number."""
    if serial < 0 or serial > _SERIAL_MASK:
        raise SchemaError(f"serial {serial} out of range for {kind.name}")
    return (int(kind) << _SERIAL_BITS) | serial


def kind_of(entity_id: int) -> EntityKind:
    """Recover the entity kind from a composed id."""
    tag = entity_id >> _SERIAL_BITS
    try:
        return EntityKind(tag)
    except ValueError as exc:
        raise SchemaError(f"id {entity_id} has unknown kind tag {tag}") from exc


def serial_of(entity_id: int) -> int:
    """Recover the serial number from a composed id."""
    return entity_id & _SERIAL_MASK


def is_kind(entity_id: int, kind: EntityKind) -> bool:
    """True if the id belongs to the given kind's space."""
    return (entity_id >> _SERIAL_BITS) == int(kind)


class IdAllocator:
    """Hands out serial numbers for one entity kind in increasing order."""

    def __init__(self, kind: EntityKind, start: int = 0) -> None:
        self.kind = kind
        self._next = start

    def allocate(self) -> int:
        """Return the next id in this kind's space."""
        entity_id = make_id(self.kind, self._next)
        self._next += 1
        return entity_id

    @property
    def allocated(self) -> int:
        """Number of ids handed out so far."""
        return self._next
