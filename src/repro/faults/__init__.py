"""Deterministic fault injection for the workload driver.

A validated retry policy needs faults to retry; this package supplies
them reproducibly.  Everything is driven by a seeded
:class:`~repro.faults.plan.FaultPlan` — per-op-class probabilities
and/or explicit per-operation schedules — so the exact same faults fire
for the exact same ``(seed, plan)`` no matter how the driver's threads
interleave:

* :mod:`~repro.faults.plan` — fault kinds, per-class rates, explicit
  schedules, and the seeded decision function;
* :mod:`~repro.faults.injector` — :class:`FaultInjectingConnector`, a
  wrapper composable with any connector (including the differential
  one) that raises transient aborts, injects latency spikes, stalls
  (hangs) and fatal errors according to the plan;
* :mod:`~repro.faults.conflicts` — a store-level knob that makes
  :class:`~repro.store.graph.GraphStore` commits raise *genuine*
  :class:`~repro.errors.WriteConflictError` at a seeded rate, so the
  MVCC retry path is exercised end-to-end rather than simulated.

The chaos soak (``repro chaos`` / :mod:`repro.validation.chaos`) runs
the driver under a plan and asserts the perturbed run converges to the
same final state digest as a fault-free run.
"""

from .conflicts import ConflictInjector, install_conflict_injector
from .injector import (
    FaultInjectingConnector,
    InjectedFatalError,
    InjectedTransientError,
)
from .plan import ClassRates, FaultKind, FaultPlan, FaultSpec

__all__ = [
    "ClassRates",
    "ConflictInjector",
    "FaultInjectingConnector",
    "FaultKind",
    "FaultPlan",
    "FaultSpec",
    "InjectedFatalError",
    "InjectedTransientError",
    "install_conflict_injector",
]
