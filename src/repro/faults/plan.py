"""Fault plans: what goes wrong, where, and how often — reproducibly.

A :class:`FaultPlan` combines two layers:

* **rates** — per-op-class probabilities of each fault kind (the key
  ``"*"`` applies to every class without its own entry);
* **schedule** — explicit ``operation key → FaultSpec`` entries that
  override the probabilistic layer for targeted tests ("make exactly
  the 17th update hang").

The decision for one operation is a pure function of ``(seed, key)``
where ``key`` is a *stable identity* of the operation — its index in
the operation stream when the injector knows the stream, else the
``(op class, due time)`` pair.  Thread interleaving, retries and
partitioning therefore cannot change which operations fault: identical
``(seed, plan)`` reproduces identical injections.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from ..rng import RandomStream


class FaultKind(Enum):
    """The injectable failure modes."""

    #: Transient abort: the attempt raises before touching the SUT
    #: (a deadlock-victim abort); succeeds once retried enough.
    ABORT = "abort"
    #: Latency spike: the attempt sleeps, then executes normally.
    LATENCY = "latency"
    #: Hang: the first attempt stalls for ``delay_seconds`` and then
    #: aborts *without* touching the SUT (so a watchdog-abandoned
    #: attempt cannot double-apply an update); retries run clean.
    HANG = "hang"
    #: Fatal: every attempt raises :class:`FatalSUTError`; never
    #: retried, the operation cannot succeed.
    FATAL = "fatal"


@dataclass(frozen=True)
class FaultSpec:
    """One concrete fault bound to one operation."""

    kind: FaultKind
    #: ABORT: number of consecutive failing attempts before success.
    attempts: int = 1
    #: LATENCY / HANG: injected stall in seconds.
    delay_seconds: float = 0.0


@dataclass(frozen=True)
class ClassRates:
    """Per-op-class fault probabilities (independent thresholds).

    The four rates must sum to at most 1: one uniform draw per
    operation selects at most one fault kind.
    """

    abort: float = 0.0
    latency: float = 0.0
    hang: float = 0.0
    fatal: float = 0.0
    #: Failing attempts per injected abort.
    abort_attempts: int = 1
    latency_seconds: float = 0.005
    hang_seconds: float = 0.25

    def __post_init__(self) -> None:
        total = self.abort + self.latency + self.hang + self.fatal
        if not 0.0 <= total <= 1.0:
            raise ValueError(
                f"fault rates must sum to [0, 1], got {total}")


@dataclass(frozen=True)
class FaultPlan:
    """A reproducible description of every fault a run may see."""

    #: op-class name (``op_class_name``) or ``"*"`` → rates.
    rates: dict = field(default_factory=dict)
    #: stable operation key → explicit fault (overrides rates).
    #: Keys are stream indices (int) or ``(op_class, due_time)`` pairs,
    #: matching whichever identity the injector resolves for the op.
    schedule: dict = field(default_factory=dict)

    @classmethod
    def uniform(cls, abort: float = 0.0, latency: float = 0.0,
                hang: float = 0.0, fatal: float = 0.0,
                abort_attempts: int = 1,
                latency_seconds: float = 0.005,
                hang_seconds: float = 0.25) -> "FaultPlan":
        """A plan applying one rate set to every operation class."""
        return cls(rates={"*": ClassRates(
            abort=abort, latency=latency, hang=hang, fatal=fatal,
            abort_attempts=abort_attempts,
            latency_seconds=latency_seconds,
            hang_seconds=hang_seconds)})

    def with_fault(self, key, spec: FaultSpec) -> "FaultPlan":
        """A copy with one more explicit schedule entry."""
        schedule = dict(self.schedule)
        schedule[key] = spec
        return FaultPlan(rates=dict(self.rates), schedule=schedule)

    def rates_for(self, op_class: str) -> ClassRates | None:
        rates = self.rates.get(op_class)
        if rates is None:
            rates = self.rates.get("*")
        return rates

    def decide(self, seed: int, key, op_class: str) -> FaultSpec | None:
        """The fault (if any) bound to one operation — pure in its args."""
        explicit = self.schedule.get(key)
        if explicit is not None:
            return explicit
        rates = self.rates_for(op_class)
        if rates is None:
            return None
        if isinstance(key, tuple):
            stream = RandomStream.for_key(seed, "fault", *key)
        else:
            stream = RandomStream.for_key(seed, "fault", key)
        draw = stream.random()
        if draw < rates.abort:
            return FaultSpec(FaultKind.ABORT,
                             attempts=rates.abort_attempts)
        draw -= rates.abort
        if draw < rates.latency:
            return FaultSpec(FaultKind.LATENCY,
                             delay_seconds=rates.latency_seconds)
        draw -= rates.latency
        if draw < rates.hang:
            return FaultSpec(FaultKind.HANG,
                             delay_seconds=rates.hang_seconds)
        draw -= rates.hang
        if draw < rates.fatal:
            return FaultSpec(FaultKind.FATAL)
        return None

    @property
    def empty(self) -> bool:
        return not self.schedule and all(
            r.abort == r.latency == r.hang == r.fatal == 0.0
            for r in self.rates.values())
