"""The fault-injecting connector wrapper.

:class:`FaultInjectingConnector` composes with *any* connector — the
store connector, the sleeping dummy, the differential lockstep
connector — and perturbs calls according to a seeded
:class:`~repro.faults.plan.FaultPlan`.  Faults are decided per
*operation identity*, not per call, so:

* a transient abort fails the first ``attempts`` calls for that
  operation and then lets it through — exercising the retry loop;
* a hang stalls and then aborts **without** delegating, so an attempt
  abandoned by the scheduler's watchdog can never double-apply an
  update behind the retry's back;
* counts are deterministic for a given ``(seed, plan)`` regardless of
  thread interleaving.
"""

from __future__ import annotations

import threading
import time

from ..driver.resilience import raise_if_abandoned
from ..errors import FatalSUTError, TransientError
from ..workload.operations import op_class_name
from .plan import FaultKind, FaultPlan, FaultSpec


class InjectedTransientError(TransientError):
    """A chaos-injected transient abort (retry should absorb it)."""


class InjectedFatalError(FatalSUTError):
    """A chaos-injected fatal SUT failure (must never be retried)."""


class FaultInjectingConnector:
    """Wraps a connector, injecting faults per a deterministic plan.

    ``operations`` (the stream the driver will run, in order) binds
    each operation object to its stream index so explicit schedule
    entries and seeded draws key on the index; without it, operations
    are identified by ``(op class, due time)`` — equally stable, but
    schedule entries must then use that pair as key.
    """

    def __init__(self, inner, plan: FaultPlan, seed: int = 0,
                 operations=None) -> None:
        self.inner = inner
        # Capability flags mirror the wrapped connector: injecting
        # faults changes failure behavior, not what executes where.
        self.supports_reads = bool(getattr(inner, "supports_reads", True))
        self.is_remote = bool(getattr(inner, "is_remote", False))
        self.plan = plan
        self.seed = seed
        self._index_of = ({id(op): i for i, op in enumerate(operations)}
                          if operations is not None else None)
        self._lock = threading.Lock()
        self._attempts: dict = {}
        self._injected: dict[FaultKind, int] = {k: 0 for k in FaultKind}
        self._injected_by_class: dict[str, int] = {}

    # -- accounting --------------------------------------------------------

    @property
    def injected_total(self) -> int:
        with self._lock:
            return sum(self._injected.values())

    def injected_counts(self) -> dict[str, int]:
        """Fault-kind name → times injected (one per faulted attempt)."""
        with self._lock:
            return {kind.value: count
                    for kind, count in self._injected.items()}

    def injected_by_class(self) -> dict[str, int]:
        """Op-class name → injected fault count."""
        with self._lock:
            return dict(self._injected_by_class)

    # -- the connector protocol --------------------------------------------

    def _key(self, operation):
        if self._index_of is not None:
            index = self._index_of.get(id(operation))
            if index is not None:
                return index
        due = getattr(operation, "due_time", 0)
        return (op_class_name(operation), due)

    def _count(self, kind: FaultKind, op_class: str) -> None:
        with self._lock:
            self._injected[kind] += 1
            self._injected_by_class[op_class] = \
                self._injected_by_class.get(op_class, 0) + 1

    def execute(self, operation) -> None:
        op_class = op_class_name(operation)
        key = self._key(operation)
        spec: FaultSpec | None = self.plan.decide(self.seed, key, op_class)
        if spec is None:
            return self.inner.execute(operation)
        with self._lock:
            attempt = self._attempts[key] = self._attempts.get(key, 0) + 1
        if spec.kind is FaultKind.ABORT:
            if attempt <= spec.attempts:
                self._count(spec.kind, op_class)
                raise InjectedTransientError(
                    f"injected abort #{attempt} for {op_class} "
                    f"(key {key})")
            return self.inner.execute(operation)
        if spec.kind is FaultKind.LATENCY:
            self._count(spec.kind, op_class)
            if spec.delay_seconds > 0:
                time.sleep(spec.delay_seconds)
                # If the watchdog abandoned this attempt during the
                # injected delay, the retry it already triggered owns
                # the operation now — delegating here would apply the
                # update twice.  (Hangs never delegate; delays must
                # re-check before they do.)
                raise_if_abandoned()
            return self.inner.execute(operation)
        if spec.kind is FaultKind.HANG:
            if attempt == 1:
                self._count(spec.kind, op_class)
                # Stall, then abort WITHOUT delegating: if a watchdog
                # abandoned this attempt mid-sleep, the SUT must not be
                # mutated behind the retry's back.
                if spec.delay_seconds > 0:
                    time.sleep(spec.delay_seconds)
                raise InjectedTransientError(
                    f"injected hang released for {op_class} (key {key})")
            return self.inner.execute(operation)
        # FATAL: every attempt fails — a correct policy never makes a
        # second one.
        self._count(spec.kind, op_class)
        raise InjectedFatalError(
            f"injected fatal SUT error for {op_class} (key {key})")

    def close(self) -> None:
        close = getattr(self.inner, "close", None)
        if callable(close):
            close()
