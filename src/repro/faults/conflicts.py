"""Store-level conflict injection: genuine MVCC aborts at a seeded rate.

Connector-level aborts prove the retry loop works; they do not prove
the *store's* abort path composes with it.  :class:`ConflictInjector`
hooks :meth:`GraphStore._apply_commit_locked` so a seeded fraction of
commits raise a real :class:`~repro.errors.WriteConflictError` before
validation — the transaction aborts exactly as a losing first-committer
would (abort counters, discarded write set), and the retry replays the
whole update in a fresh transaction against the newer snapshot.

Decisions draw from one stream in commit order, so single-partition
(sequential) runs are exactly reproducible; under concurrent partitions
the commit order — and therefore which commit aborts — depends on
scheduling, but the injected *rate* still holds.
"""

from __future__ import annotations

import threading

from ..errors import WriteConflictError
from ..rng import RandomStream


class ConflictInjector:
    """Raises ``WriteConflictError`` on a seeded fraction of commits."""

    def __init__(self, seed: int, rate: float) -> None:
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"conflict rate must be in [0, 1], got {rate}")
        self.rate = rate
        self._stream = RandomStream.for_key(seed, "store-conflict")
        self._lock = threading.Lock()
        self.commits_seen = 0
        self.injected = 0

    def before_commit(self, txn) -> None:
        """Called by the store under the commit lock; may raise."""
        with self._lock:
            self.commits_seen += 1
            fire = self._stream.random() < self.rate
            if fire:
                self.injected += 1
        if fire:
            raise WriteConflictError(
                f"injected write-write conflict "
                f"(commit #{self.commits_seen})")


def install_conflict_injector(store, seed: int,
                              rate: float) -> ConflictInjector:
    """Attach a fresh :class:`ConflictInjector` to a store; returns it."""
    injector = ConflictInjector(seed, rate)
    store.fault_injector = injector
    return injector
