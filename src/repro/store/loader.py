"""Mapping the SNB schema onto the graph store, plus the bulk loader.

This module is the single source of truth for how SNB entities become
store vertices/edges: both the bulk loader (32 months of data at benchmark
start) and the transactional update implementations
(:mod:`repro.queries.updates`, the last 4 months) go through the same
converters, so bulk-loaded and DML-inserted data are indistinguishable.
"""

from __future__ import annotations

from typing import Any

from ..schema.dataset import SocialNetwork
from ..schema.entities import (
    Comment,
    Forum,
    ForumMembership,
    Knows,
    Like,
    Person,
    Post,
)
from .graph import GraphStore, Transaction


class VertexLabel:
    """Vertex label constants of the SNB graph schema."""

    PERSON = "person"
    FORUM = "forum"
    POST = "post"
    COMMENT = "comment"
    TAG = "tag"
    TAG_CLASS = "tagclass"
    PLACE = "place"
    ORGANISATION = "organisation"


class EdgeLabel:
    """Edge label constants of the SNB graph schema."""

    KNOWS = "knows"                    # person ↔ person {creation_date}
    HAS_MEMBER = "has_member"          # forum → person {joined_date}
    CONTAINER_OF = "container_of"      # forum → post
    HAS_CREATOR = "has_creator"        # message → person
    REPLY_OF = "reply_of"              # comment → parent message
    LIKES = "likes"                    # person → message {creation_date,
    #                                    is_post}
    HAS_TAG = "has_tag"                # message → tag
    FORUM_HAS_TAG = "forum_has_tag"    # forum → tag
    HAS_INTEREST = "has_interest"      # person → tag
    STUDY_AT = "study_at"              # person → university {class_year}
    WORK_AT = "work_at"                # person → company {work_from}
    IS_LOCATED_IN = "is_located_in"    # person → city, message → country,
    #                                    organisation → place
    IS_PART_OF = "is_part_of"          # place → place
    HAS_TYPE = "has_type"              # tag → tagclass
    HAS_MODERATOR = "has_moderator"    # forum → person


# ---------------------------------------------------------------------------
# entity → vertex property converters
# ---------------------------------------------------------------------------

def person_props(person: Person) -> dict[str, Any]:
    return {
        "first_name": person.first_name,
        "last_name": person.last_name,
        "gender": person.gender,
        "birthday": person.birthday,
        "creation_date": person.creation_date,
        "location_ip": person.location_ip,
        "browser_used": person.browser_used,
        "city_id": person.city_id,
        "country_id": person.country_id,
        "languages": person.languages,
        "emails": person.emails,
    }


def forum_props(forum: Forum) -> dict[str, Any]:
    return {
        "title": forum.title,
        "creation_date": forum.creation_date,
        "moderator_id": forum.moderator_id,
    }


def post_props(post: Post) -> dict[str, Any]:
    return {
        "creation_date": post.creation_date,
        "author_id": post.author_id,
        "forum_id": post.forum_id,
        "content": post.content,
        "length": post.length,
        "language": post.language,
        "country_id": post.country_id,
        "image_file": post.image_file,
        "location_ip": post.location_ip,
        "browser_used": post.browser_used,
    }


def comment_props(comment: Comment) -> dict[str, Any]:
    return {
        "creation_date": comment.creation_date,
        "author_id": comment.author_id,
        "content": comment.content,
        "length": comment.length,
        "country_id": comment.country_id,
        "root_post_id": comment.root_post_id,
        "reply_of_id": comment.reply_of_id,
        "location_ip": comment.location_ip,
        "browser_used": comment.browser_used,
    }


# ---------------------------------------------------------------------------
# transactional insert helpers (shared with the update queries)
# ---------------------------------------------------------------------------

def insert_person(txn: Transaction, person: Person) -> None:
    """Insert a person with all its outgoing relationship edges."""
    txn.insert_vertex(VertexLabel.PERSON, person.id, person_props(person))
    txn.insert_edge(EdgeLabel.IS_LOCATED_IN, person.id, person.city_id)
    for tag_id in person.interests:
        txn.insert_edge(EdgeLabel.HAS_INTEREST, person.id, tag_id)
    for study in person.study_at:
        txn.insert_edge(EdgeLabel.STUDY_AT, person.id,
                        study.organisation_id,
                        {"class_year": study.class_year})
    for work in person.work_at:
        txn.insert_edge(EdgeLabel.WORK_AT, person.id, work.organisation_id,
                        {"work_from": work.work_from})


def insert_friendship(txn: Transaction, edge: Knows) -> None:
    txn.insert_undirected_edge(EdgeLabel.KNOWS, edge.person1_id,
                               edge.person2_id,
                               {"creation_date": edge.creation_date})


def insert_forum(txn: Transaction, forum: Forum) -> None:
    txn.insert_vertex(VertexLabel.FORUM, forum.id, forum_props(forum))
    txn.insert_edge(EdgeLabel.HAS_MODERATOR, forum.id, forum.moderator_id)
    for tag_id in forum.tag_ids:
        txn.insert_edge(EdgeLabel.FORUM_HAS_TAG, forum.id, tag_id)


def insert_membership(txn: Transaction, membership: ForumMembership) -> None:
    txn.insert_edge(EdgeLabel.HAS_MEMBER, membership.forum_id,
                    membership.person_id,
                    {"joined_date": membership.joined_date})


def insert_post(txn: Transaction, post: Post) -> None:
    txn.insert_vertex(VertexLabel.POST, post.id, post_props(post))
    txn.insert_edge(EdgeLabel.HAS_CREATOR, post.id, post.author_id)
    txn.insert_edge(EdgeLabel.CONTAINER_OF, post.forum_id, post.id)
    txn.insert_edge(EdgeLabel.IS_LOCATED_IN, post.id, post.country_id)
    for tag_id in post.tag_ids:
        txn.insert_edge(EdgeLabel.HAS_TAG, post.id, tag_id)


def insert_comment(txn: Transaction, comment: Comment) -> None:
    txn.insert_vertex(VertexLabel.COMMENT, comment.id,
                      comment_props(comment))
    txn.insert_edge(EdgeLabel.HAS_CREATOR, comment.id, comment.author_id)
    txn.insert_edge(EdgeLabel.REPLY_OF, comment.id, comment.reply_of_id)
    txn.insert_edge(EdgeLabel.IS_LOCATED_IN, comment.id, comment.country_id)
    for tag_id in comment.tag_ids:
        txn.insert_edge(EdgeLabel.HAS_TAG, comment.id, tag_id)


def insert_like(txn: Transaction, like: Like) -> None:
    txn.insert_edge(EdgeLabel.LIKES, like.person_id, like.message_id,
                    {"creation_date": like.creation_date,
                     "is_post": like.is_post})


# ---------------------------------------------------------------------------
# bulk loading
# ---------------------------------------------------------------------------

def create_snb_indexes(store: GraphStore) -> None:
    """The secondary indexes the SNB-Interactive queries rely on."""
    store.create_hash_index(VertexLabel.PERSON, "first_name")
    store.create_hash_index(VertexLabel.TAG, "name")
    store.create_hash_index(VertexLabel.PLACE, "name")
    store.create_ordered_index(VertexLabel.POST, "creation_date")
    store.create_ordered_index(VertexLabel.COMMENT, "creation_date")


def load_network(network: SocialNetwork,
                 store: GraphStore | None = None) -> GraphStore:
    """Bulk-load a network into a (new by default) store.

    Uses the non-transactional fast path: everything lands at commit
    timestamp 1, which models the benchmark's initial bulk load.
    """
    if store is None:
        store = GraphStore()
    create_snb_indexes(store)

    store.bulk_insert_vertices(VertexLabel.PLACE, [
        (p.id, {"name": p.name, "type": p.type.value, "part_of": p.part_of})
        for p in network.places])
    store.bulk_insert_edges(EdgeLabel.IS_PART_OF, [
        (p.id, p.part_of, None) for p in network.places
        if p.part_of is not None])
    store.bulk_insert_vertices(VertexLabel.ORGANISATION, [
        (o.id, {"name": o.name, "type": o.type.value,
                "location_id": o.location_id})
        for o in network.organisations])
    store.bulk_insert_edges(EdgeLabel.IS_LOCATED_IN, [
        (o.id, o.location_id, None) for o in network.organisations])
    store.bulk_insert_vertices(VertexLabel.TAG_CLASS, [
        (tc.id, {"name": tc.name, "parent_id": tc.parent_id})
        for tc in network.tag_classes])
    store.bulk_insert_vertices(VertexLabel.TAG, [
        (t.id, {"name": t.name, "class_id": t.class_id})
        for t in network.tags])
    store.bulk_insert_edges(EdgeLabel.HAS_TYPE, [
        (t.id, t.class_id, None) for t in network.tags])

    store.bulk_insert_vertices(VertexLabel.PERSON, [
        (p.id, person_props(p)) for p in network.persons])
    store.bulk_insert_edges(EdgeLabel.IS_LOCATED_IN, [
        (p.id, p.city_id, None) for p in network.persons])
    store.bulk_insert_edges(EdgeLabel.HAS_INTEREST, [
        (p.id, tag_id, None)
        for p in network.persons for tag_id in p.interests])
    store.bulk_insert_edges(EdgeLabel.STUDY_AT, [
        (p.id, s.organisation_id, {"class_year": s.class_year})
        for p in network.persons for s in p.study_at])
    store.bulk_insert_edges(EdgeLabel.WORK_AT, [
        (p.id, w.organisation_id, {"work_from": w.work_from})
        for p in network.persons for w in p.work_at])

    knows_rows = []
    for edge in network.knows:
        props = {"creation_date": edge.creation_date}
        knows_rows.append((edge.person1_id, edge.person2_id, props))
        knows_rows.append((edge.person2_id, edge.person1_id, props))
    store.bulk_insert_edges(EdgeLabel.KNOWS, knows_rows)

    store.bulk_insert_vertices(VertexLabel.FORUM, [
        (f.id, forum_props(f)) for f in network.forums])
    store.bulk_insert_edges(EdgeLabel.HAS_MODERATOR, [
        (f.id, f.moderator_id, None) for f in network.forums])
    store.bulk_insert_edges(EdgeLabel.FORUM_HAS_TAG, [
        (f.id, tag_id, None)
        for f in network.forums for tag_id in f.tag_ids])
    store.bulk_insert_edges(EdgeLabel.HAS_MEMBER, [
        (m.forum_id, m.person_id, {"joined_date": m.joined_date})
        for m in network.memberships])

    store.bulk_insert_vertices(VertexLabel.POST, [
        (p.id, post_props(p)) for p in network.posts])
    store.bulk_insert_edges(EdgeLabel.HAS_CREATOR, [
        (p.id, p.author_id, None) for p in network.posts])
    store.bulk_insert_edges(EdgeLabel.CONTAINER_OF, [
        (p.forum_id, p.id, None) for p in network.posts])
    store.bulk_insert_edges(EdgeLabel.IS_LOCATED_IN, [
        (p.id, p.country_id, None) for p in network.posts])
    store.bulk_insert_edges(EdgeLabel.HAS_TAG, [
        (p.id, tag_id, None)
        for p in network.posts for tag_id in p.tag_ids])

    store.bulk_insert_vertices(VertexLabel.COMMENT, [
        (c.id, comment_props(c)) for c in network.comments])
    store.bulk_insert_edges(EdgeLabel.HAS_CREATOR, [
        (c.id, c.author_id, None) for c in network.comments])
    store.bulk_insert_edges(EdgeLabel.REPLY_OF, [
        (c.id, c.reply_of_id, None) for c in network.comments])
    store.bulk_insert_edges(EdgeLabel.IS_LOCATED_IN, [
        (c.id, c.country_id, None) for c in network.comments])
    store.bulk_insert_edges(EdgeLabel.HAS_TAG, [
        (c.id, tag_id, None)
        for c in network.comments for tag_id in c.tag_ids])

    store.bulk_insert_edges(EdgeLabel.LIKES, [
        (like.person_id, like.message_id,
         {"creation_date": like.creation_date, "is_post": like.is_post})
        for like in network.likes])
    return store
