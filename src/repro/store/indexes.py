"""Secondary indexes for the graph store.

Two kinds:

* :class:`HashIndex` — equality lookups (e.g. person.firstName);
* :class:`OrderedIndex` — bisect-based sorted index supporting range scans
  (e.g. message.creationDate — the paper's §3 notes date-range selections
  over time-ordered ids have high locality; the ordered index is what
  provides the ``O(log n)`` lookups the workload-complexity analysis in
  §4 assumes).

Both are versioned the same way vertices are: entries carry the commit
timestamp that created them, and reads filter by the transaction snapshot.
The workload is insert-only, so tombstones are supported but rarely used.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Any, Iterator


class HashIndex:
    """Versioned equality index: key → [(vertex id, created_ts)]."""

    __slots__ = ("_entries",)

    def __init__(self) -> None:
        self._entries: dict[Any, list[tuple[int, int]]] = {}

    def insert(self, key: Any, vertex_id: int, ts: int) -> None:
        self._entries.setdefault(key, []).append((vertex_id, ts))

    def lookup(self, key: Any, snapshot: int) -> list[int]:
        """Vertex ids with ``key`` visible at ``snapshot``."""
        return [vid for vid, ts in self._entries.get(key, ())
                if ts <= snapshot]

    def keys(self) -> Iterator[Any]:
        return iter(self._entries)

    def __len__(self) -> int:
        return sum(len(postings) for postings in self._entries.values())


class OrderedIndex:
    """Versioned ordered index over ``(key, vertex id, created_ts)`` rows.

    Inserts keep the row list sorted by ``(key, vertex id)`` via bisect;
    bulk loading uses :meth:`extend_sorted` for O(n) ingestion.  Range
    scans return ids in key order (ascending or descending).
    """

    __slots__ = ("_keys", "_rows")

    def __init__(self) -> None:
        # Parallel arrays: _keys for bisect, _rows holds (key, vid, ts).
        self._keys: list[Any] = []
        self._rows: list[tuple[Any, int, int]] = []

    def insert(self, key: Any, vertex_id: int, ts: int) -> None:
        position = bisect_right(self._keys, key)
        self._keys.insert(position, key)
        self._rows.insert(position, (key, vertex_id, ts))

    def extend_sorted(self, rows: list[tuple[Any, int, int]]) -> None:
        """Bulk-append rows already sorted by key (loader fast path)."""
        if self._keys and rows and rows[0][0] < self._keys[-1]:
            raise ValueError("extend_sorted rows must not precede "
                             "existing keys")
        self._rows.extend(rows)
        self._keys.extend(row[0] for row in rows)

    def range(self, low: Any = None, high: Any = None, *,
              snapshot: int, reverse: bool = False,
              ) -> Iterator[tuple[Any, int]]:
        """Yield ``(key, vertex id)`` with low ≤ key ≤ high at snapshot."""
        start = 0 if low is None else bisect_left(self._keys, low)
        stop = len(self._keys) if high is None \
            else bisect_right(self._keys, high)
        rows = range(start, stop)
        if reverse:
            rows = reversed(rows)
        for position in rows:
            key, vertex_id, ts = self._rows[position]
            if ts <= snapshot:
                yield key, vertex_id

    def __len__(self) -> int:
        return len(self._rows)
