"""CSR-style packed adjacency: contiguous neighbor arrays.

The per-row representations (the store's ``_EdgeRecord`` lists, the
engine's ``knows`` hash-index postings) pay a Python-object hop per
neighbor per traversal.  A :class:`CSRGraph` packs all neighbors into
one flat target list plus a ``node → (start, stop)`` bounds dict, so
BFS frontiers expand with slice-and-extend (C-level bulk copies) and
level dedup is one ``set.difference_update``.

Two consumers:

* the engine — :meth:`repro.engine.rows.Table.csr` packs an edge table
  lazily per row-count epoch for ``TransitiveExpand`` and the 2-hop
  plans;
* the store — :class:`CSRCache`, attached like the adjacency cache and
  invalidated through the MVCC machinery: per-label edge-append
  counters bumped on every commit/bulk path, so a packed snapshot is
  served only while the visible edge set is provably unchanged.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Mapping, Sequence


class CSRGraph:
    """Immutable packed adjacency built from one logical snapshot."""

    __slots__ = ("_bounds", "_targets")

    def __init__(self, bounds: dict[Hashable, tuple[int, int]],
                 targets: list) -> None:
        self._bounds = bounds
        self._targets = targets

    @classmethod
    def from_adjacency(
            cls, adjacency: Mapping[Hashable, Iterable]) -> "CSRGraph":
        targets: list = []
        bounds: dict[Hashable, tuple[int, int]] = {}
        for node, neighbors in adjacency.items():
            start = len(targets)
            targets.extend(neighbors)
            bounds[node] = (start, len(targets))
        return cls(bounds, targets)

    @classmethod
    def from_edges(cls, edges: Iterable[tuple]) -> "CSRGraph":
        """Build from ``(source, target)`` pairs, preserving row order."""
        adjacency: dict[Hashable, list] = {}
        for source, target in edges:
            bucket = adjacency.get(source)
            if bucket is None:
                bucket = adjacency[source] = []
            bucket.append(target)
        return cls.from_adjacency(adjacency)

    def __len__(self) -> int:
        return len(self._targets)

    @property
    def node_count(self) -> int:
        return len(self._bounds)

    def neighbors(self, node: Hashable) -> Sequence:
        bounds = self._bounds.get(node)
        if bounds is None:
            return ()
        return self._targets[bounds[0]:bounds[1]]

    def gather(self, nodes: Iterable[Hashable]) -> list:
        """All neighbors of ``nodes`` concatenated (with duplicates)."""
        out: list = []
        extend = out.extend
        targets = self._targets
        get = self._bounds.get
        for node in nodes:
            bounds = get(node)
            if bounds is not None:
                extend(targets[bounds[0]:bounds[1]])
        return out

    def frontier_bfs(self, source: Hashable,
                     max_hops: int) -> Iterable[tuple[list, int]]:
        """Yield ``(frontier_nodes, depth)`` per BFS level, excluding
        the source; stops when a level is empty or depth exceeds
        ``max_hops``."""
        seen = {source}
        frontier = [source]
        for depth in range(1, max_hops + 1):
            fresh = set(self.gather(frontier))
            fresh.difference_update(seen)
            if not fresh:
                return
            seen.update(fresh)
            frontier = list(fresh)
            yield frontier, depth

    def distances_from(self, source: Hashable,
                       max_hops: int) -> dict[Hashable, int]:
        """``node → hop distance`` for every node within ``max_hops``
        of ``source`` (source excluded), BFS level at a time."""
        distances: dict[Hashable, int] = {}
        for frontier, depth in self.frontier_bfs(source, max_hops):
            for node in frontier:
                distances[node] = depth
        return distances


class CSRCache:
    """Per-(label, direction) packed snapshots for the graph store.

    MVCC validity rule: an entry built while scanning with visibility
    ``ts <= snapshot`` stays correct for any reader at the *head*
    snapshot as long as no edge of that label has been appended since
    the build began — tracked by the store's per-label append counters.
    Readers holding older snapshots, or transactions with their own
    uncommitted edges, bypass the cache entirely (the store only calls
    in for head-snapshot, read-clean transactions).
    """

    def __init__(self) -> None:
        self._entries: dict[tuple, tuple[int, CSRGraph]] = {}
        self.hits = 0
        self.misses = 0
        self.invalidations = 0

    def lookup(self, key: tuple, append_counter: int,
               build: "callable") -> CSRGraph:
        """Serve the packed graph for ``key`` if still valid, else
        rebuild via ``build()`` and remember it with the pre-build
        append counter (a concurrent append bumps the counter and the
        next lookup rebuilds — the stale entry was still snapshot-
        correct for the reader it served)."""
        entry = self._entries.get(key)
        if entry is not None:
            if entry[0] == append_counter:
                self.hits += 1
                return entry[1]
            self.invalidations += 1
        self.misses += 1
        graph = build()
        self._entries[key] = (append_counter, graph)
        return graph

    def clear(self) -> None:
        self._entries.clear()

    def stats(self) -> dict[str, int]:
        return {"hits": self.hits, "misses": self.misses,
                "invalidations": self.invalidations,
                "entries": len(self._entries)}
