"""Write-ahead logging and recovery for the graph store.

The benchmark requires full ACID; the in-memory MVCC store provides
atomicity, consistency and isolation, and this module supplies the D:
every commit appends one JSON line describing its write set *before*
the writes are applied (classic WAL discipline), and
:func:`recover_store` rebuilds a store from the bulk-load dataset plus
the log — mirroring a real deployment, where the 32-month bulk data
comes from CSVs and only the DML stream needs logging.

Property values are JSON-encoded with tuples rendered as lists and
restored as tuples on replay, so a recovered store is
read-indistinguishable from the original.
"""

from __future__ import annotations

import json
import os
import threading
import warnings
from typing import IO, Any

from .. import telemetry
from ..errors import StoreError

#: Telemetry counter incremented for every torn/partial record skipped
#: during log reading (crash mid-append leaves at most one).
TORN_RECORD_COUNTER = "store.wal.torn_records"

#: The keys every well-formed commit record carries.
_RECORD_KEYS = ("ts", "inserts", "updates", "edges")
from ..schema.dataset import SocialNetwork
from .graph import GraphStore
from .loader import load_network


def _encode_value(value: Any) -> Any:
    if isinstance(value, tuple):
        return [_encode_value(item) for item in value]
    return value


def _decode_value(value: Any) -> Any:
    if isinstance(value, list):
        return tuple(_decode_value(item) for item in value)
    return value


def _encode_props(props: dict | None) -> dict | None:
    if props is None:
        return None
    return {key: _encode_value(value) for key, value in props.items()}


def _decode_props(props: dict | None) -> dict | None:
    if props is None:
        return None
    return {key: _decode_value(value) for key, value in props.items()}


class WriteAheadLog:
    """Append-only commit log (one JSON line per commit)."""

    def __init__(self, path: str | os.PathLike,
                 sync_every_commit: bool = False) -> None:
        self.path = os.fspath(path)
        self._handle: IO[str] = open(self.path, "a",
                                     encoding="utf-8")
        self._lock = threading.Lock()
        self.sync_every_commit = sync_every_commit
        self.commits_logged = 0

    def log_commit(self, ts: int, new_vertices, updated_vertices,
                   new_edges) -> None:
        """Persist one commit's write set (called before it applies)."""
        record = {
            "ts": ts,
            "inserts": [[label, vid, _encode_props(props)]
                        for (label, vid), props
                        in new_vertices.items()],
            "updates": [[label, vid, _encode_props(changes)]
                        for (label, vid), changes
                        in updated_vertices.items()],
            "edges": [[label, src, dst, _encode_props(props)]
                      for label, src, dst, props in new_edges],
        }
        line = json.dumps(record, separators=(",", ":"))
        if telemetry.active:
            with telemetry.span("store.wal.commit", ts=ts,
                                bytes=len(line) + 1):
                self._append(line)
        else:
            self._append(line)

    def _append(self, line: str) -> None:
        with self._lock:
            self._handle.write(line + "\n")
            self._handle.flush()
            if self.sync_every_commit:
                os.fsync(self._handle.fileno())
            self.commits_logged += 1

    def close(self) -> None:
        with self._lock:
            self._handle.close()

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


def read_log(path: str | os.PathLike) -> list[dict]:
    """Parse all commit records of a log file (oldest first).

    A torn final record (crash mid-append) is skipped with a warning —
    the ``store.wal.torn_records`` telemetry counter and a
    :class:`UserWarning` — as a recovering database would.  Torn covers
    both an unparsable trailing line and a truncation that still parses
    as JSON but lost some of the record's fields.  Corruption *before*
    the final record cannot come from a clean crash mid-append and
    raises :class:`~repro.errors.StoreError` instead of silently
    dropping committed data.
    """
    with open(path, encoding="utf-8") as handle:
        lines = [line.strip() for line in handle]
    while lines and not lines[-1]:
        lines.pop()
    records = []
    for position, line in enumerate(lines):
        if not line:
            continue
        record: dict | None
        try:
            parsed = json.loads(line)
            record = parsed if isinstance(parsed, dict) and all(
                key in parsed for key in _RECORD_KEYS) else None
        except json.JSONDecodeError:
            record = None
        if record is not None:
            records.append(record)
            continue
        if position != len(lines) - 1:
            raise StoreError(
                f"corrupt WAL record at line {position + 1} of "
                f"{os.fspath(path)} (not the final record; refusing "
                f"to drop committed data)")
        telemetry.counter(TORN_RECORD_COUNTER).inc()
        warnings.warn(
            f"skipping torn trailing WAL record in {os.fspath(path)} "
            f"(crash mid-append)", stacklevel=2)
    return records


def recover_store(bulk: SocialNetwork, wal_path: str | os.PathLike,
                  ) -> GraphStore:
    """Rebuild a store: bulk-load the base data, replay the log."""
    store = load_network(bulk)
    for record in read_log(wal_path):
        with store.transaction() as txn:
            for label, vid, props in record["inserts"]:
                txn.insert_vertex(label, vid, _decode_props(props))
            for label, vid, changes in record["updates"]:
                txn.update_vertex(label, vid,
                                  **_decode_props(changes))
            for label, src, dst, props in record["edges"]:
                txn.insert_edge(label, src, dst,
                                _decode_props(props))
    return store


def attach_wal(store: GraphStore, wal: WriteAheadLog) -> None:
    """Hook a WAL into a store's commit path.

    The log write happens after validation succeeds (so aborted
    commits never reach the log) and before the commit is acknowledged
    to the caller — once ``commit()`` returns, the commit is on disk.
    Raises if the store already has a WAL attached.
    """
    if getattr(store, "_wal", None) is not None:
        raise StoreError("store already has a write-ahead log")
    store._wal = wal
    original_apply = store._apply_commit

    def apply_with_wal(txn):
        ts = original_apply(txn)
        wal.log_commit(ts, txn.new_vertices, txn.updated_vertices,
                       txn.new_edges)
        return ts

    store._apply_commit = apply_with_wal
