"""Write-ahead logging and recovery for the graph store.

The benchmark requires full ACID; the in-memory MVCC store provides
atomicity, consistency and isolation, and this module supplies the D:
every commit appends one JSON line describing its write set *before*
the writes are applied (classic WAL discipline), and
:func:`recover_store` rebuilds a store from the bulk-load dataset plus
the log — mirroring a real deployment, where the 32-month bulk data
comes from CSVs and only the DML stream needs logging.

Two record formats share the same append/read machinery
(:class:`AppendLog` / :func:`read_records`):

* the **single-store commit log** (:class:`WriteAheadLog`) — one record
  per committed transaction, keyed by commit timestamp;
* the **shard WAL** (:class:`ShardWAL`) — one record per shard-worker
  write event, keyed by the *stable op key* the router derives from the
  update itself.  ``apply`` records carry a single-shard commit's write
  slice; ``prepare`` records persist a 2PC stage (so an in-doubt
  transaction survives a worker crash between prepare and commit);
  ``commit``/``abort`` marks resolve a stage.  Replaying the log
  rebuilds both the shard's state *and* its exactly-once applied-table,
  so a retried op can never double-apply across a crash.

Property values are JSON-encoded with tuples rendered as lists and
restored as tuples on replay, so a recovered store is
read-indistinguishable from the original.
"""

from __future__ import annotations

import json
import os
import threading
import warnings
from typing import IO, Any

from .. import telemetry
from ..errors import StoreError

#: Telemetry counter incremented for every torn/partial record skipped
#: during log reading (crash mid-append leaves at most one).
TORN_RECORD_COUNTER = "store.wal.torn_records"

#: The keys every well-formed single-store commit record carries.
_RECORD_KEYS = ("ts", "inserts", "updates", "edges")

#: The keys every well-formed shard WAL record carries.
_SHARD_RECORD_KEYS = ("act", "op")

from ..schema.dataset import SocialNetwork
from .graph import GraphStore
from .loader import load_network


def _encode_value(value: Any) -> Any:
    if isinstance(value, tuple):
        return [_encode_value(item) for item in value]
    return value


def _decode_value(value: Any) -> Any:
    if isinstance(value, list):
        return tuple(_decode_value(item) for item in value)
    return value


def _encode_props(props: dict | None) -> dict | None:
    if props is None:
        return None
    return {key: _encode_value(value) for key, value in props.items()}


def _decode_props(props: dict | None) -> dict | None:
    if props is None:
        return None
    return {key: _decode_value(value) for key, value in props.items()}


def _truncate_torn_tail(path: str) -> None:
    """Cut an unterminated (torn) final line off an append log."""
    try:
        size = os.path.getsize(path)
    except OSError:
        return
    if size == 0:
        return
    with open(path, "rb+") as handle:
        handle.seek(size - 1)
        if handle.read(1) == b"\n":
            return
        position, last_newline = size, -1
        while position > 0 and last_newline < 0:
            start = max(0, position - 4096)
            handle.seek(start)
            chunk = handle.read(position - start)
            index = chunk.rfind(b"\n")
            if index >= 0:
                last_newline = start + index
            position = start
        handle.truncate(last_newline + 1 if last_newline >= 0 else 0)


class AppendLog:
    """Append-only JSON-lines file: the shared WAL substrate.

    One line per record, flushed on every append (optionally fsynced),
    guarded by a lock so concurrent committers interleave whole lines.
    """

    def __init__(self, path: str | os.PathLike,
                 sync_every_append: bool = False) -> None:
        self.path = os.fspath(path)
        # A crash mid-append leaves a partial trailing line with no
        # newline; appending after it would weld the next record onto
        # the fragment and turn a recoverable torn tail into mid-file
        # corruption.  Drop the fragment before reopening for append
        # (readers have already counted it by the time a recovering
        # writer gets here).
        _truncate_torn_tail(self.path)
        self._handle: IO[str] = open(self.path, "a", encoding="utf-8")
        self._lock = threading.Lock()
        self.sync_every_append = sync_every_append
        self.appended = 0

    def append(self, record: dict) -> int:
        """Persist one record; returns the serialized byte length."""
        line = json.dumps(record, separators=(",", ":"))
        self.append_line(line)
        return len(line) + 1

    def append_line(self, line: str) -> None:
        with self._lock:
            self._handle.write(line + "\n")
            self._handle.flush()
            if self.sync_every_append:
                os.fsync(self._handle.fileno())
            self.appended += 1

    def append_torn(self, record: dict) -> None:
        """Write HALF a record and stop — the chaos crash-mid-append.

        Deliberately leaves the file with an unparsable trailing line
        (no newline, truncated JSON) exactly as a power cut mid-write
        would; the reader must skip it and count it as torn.
        """
        line = json.dumps(record, separators=(",", ":"))
        with self._lock:
            self._handle.write(line[:max(1, len(line) // 2)])
            self._handle.flush()

    def close(self) -> None:
        with self._lock:
            if not self._handle.closed:
                self._handle.close()

    def __enter__(self) -> "AppendLog":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


def read_records(path: str | os.PathLike,
                 required_keys: tuple[str, ...]) -> list[dict]:
    """Parse all records of an append log (oldest first).

    A torn final record (crash mid-append) is skipped with a warning —
    the ``store.wal.torn_records`` telemetry counter and a
    :class:`UserWarning` — as a recovering database would.  Torn covers
    both an unparsable trailing line and a truncation that still parses
    as JSON but lost some of the record's fields.  Corruption *before*
    the final record cannot come from a clean crash mid-append and
    raises :class:`~repro.errors.StoreError` instead of silently
    dropping committed data.
    """
    with open(path, encoding="utf-8") as handle:
        lines = [line.strip() for line in handle]
    while lines and not lines[-1]:
        lines.pop()
    records = []
    for position, line in enumerate(lines):
        if not line:
            continue
        record: dict | None
        try:
            parsed = json.loads(line)
            record = parsed if isinstance(parsed, dict) and all(
                key in parsed for key in required_keys) else None
        except json.JSONDecodeError:
            record = None
        if record is not None:
            records.append(record)
            continue
        if position != len(lines) - 1:
            raise StoreError(
                f"corrupt WAL record at line {position + 1} of "
                f"{os.fspath(path)} (not the final record; refusing "
                f"to drop committed data)")
        telemetry.counter(TORN_RECORD_COUNTER).inc()
        warnings.warn(
            f"skipping torn trailing WAL record in {os.fspath(path)} "
            f"(crash mid-append)", stacklevel=2)
    return records


# ---------------------------------------------------------------------------
# the single-store commit log
# ---------------------------------------------------------------------------

class WriteAheadLog:
    """Append-only commit log (one JSON line per commit)."""

    def __init__(self, path: str | os.PathLike,
                 sync_every_commit: bool = False) -> None:
        self._log = AppendLog(path, sync_every_append=sync_every_commit)

    @property
    def path(self) -> str:
        return self._log.path

    @property
    def sync_every_commit(self) -> bool:
        return self._log.sync_every_append

    @property
    def commits_logged(self) -> int:
        return self._log.appended

    def log_commit(self, ts: int, new_vertices, updated_vertices,
                   new_edges) -> None:
        """Persist one commit's write set (called before it applies)."""
        record = {
            "ts": ts,
            "inserts": [[label, vid, _encode_props(props)]
                        for (label, vid), props
                        in new_vertices.items()],
            "updates": [[label, vid, _encode_props(changes)]
                        for (label, vid), changes
                        in updated_vertices.items()],
            "edges": [[label, src, dst, _encode_props(props)]
                      for label, src, dst, props in new_edges],
        }
        if telemetry.active:
            with telemetry.span("store.wal.commit", ts=ts):
                self._log.append(record)
        else:
            self._log.append(record)

    def close(self) -> None:
        self._log.close()

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


def read_log(path: str | os.PathLike) -> list[dict]:
    """Parse all commit records of a single-store log (oldest first)."""
    return read_records(path, _RECORD_KEYS)


def recover_store(bulk: SocialNetwork, wal_path: str | os.PathLike,
                  ) -> GraphStore:
    """Rebuild a store: bulk-load the base data, replay the log."""
    store = load_network(bulk)
    for record in read_log(wal_path):
        with store.transaction() as txn:
            for label, vid, props in record["inserts"]:
                txn.insert_vertex(label, vid, _decode_props(props))
            for label, vid, changes in record["updates"]:
                txn.update_vertex(label, vid,
                                  **_decode_props(changes))
            for label, src, dst, props in record["edges"]:
                txn.insert_edge(label, src, dst,
                                _decode_props(props))
    return store


def attach_wal(store: GraphStore, wal: WriteAheadLog) -> None:
    """Hook a WAL into a store's commit path.

    The log write happens after validation succeeds (so aborted
    commits never reach the log) and before the commit is acknowledged
    to the caller — once ``commit()`` returns, the commit is on disk.
    Raises if the store already has a WAL attached.
    """
    if getattr(store, "_wal", None) is not None:
        raise StoreError("store already has a write-ahead log")
    store._wal = wal
    original_apply = store._apply_commit

    def apply_with_wal(txn):
        ts = original_apply(txn)
        wal.log_commit(ts, txn.new_vertices, txn.updated_vertices,
                       txn.new_edges)
        return ts

    store._apply_commit = apply_with_wal


# ---------------------------------------------------------------------------
# the shard WAL (per-worker, keyed by stable op key)
# ---------------------------------------------------------------------------

def _encode_writes(vertices: list, halves: list) -> dict:
    return {
        "vertices": [[label, vid, _encode_props(props)]
                     for label, vid, props in vertices],
        "halves": [[label, direction, anchor, other,
                    _encode_props(props)]
                   for label, direction, anchor, other, props
                   in halves],
    }


def _decode_writes(record: dict) -> tuple[list, list]:
    vertices = [(label, vid, _decode_props(props))
                for label, vid, props in record.get("vertices", [])]
    halves = [(label, direction, anchor, other, _decode_props(props))
              for label, direction, anchor, other, props
              in record.get("halves", [])]
    return vertices, halves


class ShardWAL:
    """One shard worker's write-ahead log.

    Every write event is appended *before* the worker acknowledges it
    on the pipe, so an acknowledged update is always recoverable:

    * ``apply`` — a single-shard commit's write slice (the common case);
    * ``prepare`` — a 2PC stage: the slice is persisted but not yet
      visible, so an in-doubt transaction survives a crash between
      prepare and commit and can be rolled forward or back by the
      coordinator's decision;
    * ``commit`` / ``abort`` — resolution marks for a prior prepare.
    """

    def __init__(self, path: str | os.PathLike,
                 sync_every_append: bool = False) -> None:
        self._log = AppendLog(path, sync_every_append=sync_every_append)

    @property
    def path(self) -> str:
        return self._log.path

    @property
    def records_logged(self) -> int:
        return self._log.appended

    def log_apply(self, op_key: str, vertices: list,
                  halves: list) -> None:
        self._log.append({"act": "apply", "op": op_key,
                          **_encode_writes(vertices, halves)})

    def log_prepare(self, op_key: str, vertices: list,
                    halves: list) -> None:
        self._log.append({"act": "prepare", "op": op_key,
                          **_encode_writes(vertices, halves)})

    def log_mark(self, op_key: str, act: str) -> None:
        """Append a bare ``commit``/``abort`` resolution mark."""
        self._log.append({"act": act, "op": op_key})

    def tear(self, act: str, op_key: str, vertices: list,
             halves: list) -> None:
        """Chaos hook: write half the record (crash mid-append)."""
        self._log.append_torn({"act": act, "op": op_key,
                               **_encode_writes(vertices, halves)})

    def close(self) -> None:
        self._log.close()


def read_shard_log(path: str | os.PathLike) -> list[dict]:
    """Parse a shard WAL (oldest first; torn tail skipped + counted)."""
    return read_records(path, _SHARD_RECORD_KEYS)


def replay_shard_log(store, records: list[dict],
                     ) -> tuple[dict[str, bool], dict[str, tuple]]:
    """Re-apply a shard WAL onto a freshly bulk-loaded shard store.

    Returns ``(applied, staged)``: the reconstructed exactly-once
    applied-table and the in-doubt 2PC stages (prepared, never
    resolved) awaiting the coordinator's decision.  The store must be a
    :class:`GraphStore` exposing ``apply_shard_writes``.
    """
    applied: dict[str, bool] = {}
    staged: dict[str, tuple] = {}
    for record in records:
        act, op_key = record["act"], record["op"]
        if act == "apply":
            if op_key in applied:
                continue  # duplicate delivery logged twice; apply once
            vertices, halves = _decode_writes(record)
            store.apply_shard_writes(vertices, halves)
            applied[op_key] = True
        elif act == "prepare":
            if op_key not in applied:
                staged[op_key] = _decode_writes(record)
        elif act == "commit":
            if op_key in applied:
                staged.pop(op_key, None)
                continue
            stage = staged.pop(op_key, None)
            if stage is None:
                raise StoreError(
                    f"shard WAL commit mark for {op_key} without a "
                    f"preceding prepare record")
            store.apply_shard_writes(*stage)
            applied[op_key] = True
        elif act == "abort":
            staged.pop(op_key, None)
        else:
            raise StoreError(f"unknown shard WAL act {act!r}")
    return applied, staged
