"""The MVCC property-graph store and its transactions.

Concurrency design (documented here because it is the point of the SUT):

* Every committed write is tagged with a commit timestamp drawn from a
  global counter.  A transaction's *snapshot* is the counter value at its
  start (snapshot isolation) or at each read (read committed).
* Readers never take locks: vertex version chains, adjacency lists and
  index postings are append-only, and the commit counter is advanced only
  **after** all of a commit's writes are applied, so a snapshot can never
  observe a partially applied commit.
* Commits serialize on a single mutex; before applying, a commit validates
  its write set first-committer-wins: any record touched by a commit newer
  than the transaction's snapshot raises
  :class:`~repro.errors.WriteConflictError` (or
  :class:`~repro.errors.DuplicateError` for conflicting inserts).

Because SNB-Interactive updates are pure inserts, snapshot isolation is
serializable for this workload — precisely the observation the paper makes
in "Rules and Metrics".
"""

from __future__ import annotations

import threading
from enum import Enum
from typing import Any, Iterable, Iterator

from .. import telemetry
from ..errors import (
    DuplicateError,
    NotFoundError,
    TransactionStateError,
    WriteConflictError,
)
from .indexes import HashIndex, OrderedIndex


class IsolationLevel(Enum):
    """Supported isolation levels."""

    SNAPSHOT = "snapshot"
    READ_COMMITTED = "read-committed"


class Direction(Enum):
    """Edge traversal direction."""

    OUT = "out"
    IN = "in"


class _VertexRecord:
    """Version chain of one vertex: ``(commit ts, props-or-None)`` pairs."""

    __slots__ = ("versions",)

    def __init__(self) -> None:
        self.versions: list[tuple[int, dict[str, Any] | None]] = []

    def visible(self, snapshot: int) -> dict[str, Any] | None:
        """Latest version at or before ``snapshot`` (None if tombstoned)."""
        versions = self.versions
        if versions and versions[-1][0] <= snapshot:
            return versions[-1][1]
        for ts, props in reversed(versions):
            if ts <= snapshot:
                return props
        return None

    @property
    def last_ts(self) -> int:
        return self.versions[-1][0] if self.versions else 0


class _EdgeRecord:
    """One directed adjacency entry."""

    __slots__ = ("other", "props", "ts")

    def __init__(self, other: int, props: dict[str, Any] | None,
                 ts: int) -> None:
        self.other = other
        self.props = props
        self.ts = ts


class GraphStore:
    """In-memory transactional property graph."""

    def __init__(self) -> None:
        self._vertices: dict[str, dict[int, _VertexRecord]] = {}
        self._out: dict[str, dict[int, list[_EdgeRecord]]] = {}
        self._in: dict[str, dict[int, list[_EdgeRecord]]] = {}
        self._hash_indexes: dict[tuple[str, str], HashIndex] = {}
        self._ordered_indexes: dict[tuple[str, str], OrderedIndex] = {}
        self._commit_lock = threading.Lock()
        self._last_committed = 0
        self._commits = 0
        self._aborts = 0
        #: Optional :class:`repro.cache.AdjacencyCache`.  When attached,
        #: :meth:`Transaction.neighbors` serves visible adjacency from it
        #: and commits invalidate the keys they touch (under the commit
        #: lock, before the commit timestamp is published).
        self.adjacency_cache = None
        #: Optional :class:`repro.store.csr.CSRCache` of packed whole-
        #: label adjacency (the BFS fast path).  Validity is tracked by
        #: per-label append counters: every path that adds an edge
        #: record bumps the label's counter, and a packed snapshot is
        #: served only while the counter is unchanged.
        self.csr_cache = None
        self._edge_appends: dict[str, int] = {}
        #: Optional :class:`repro.faults.ConflictInjector`.  When
        #: attached, a seeded fraction of commits raise a genuine
        #: :class:`~repro.errors.WriteConflictError` before validation,
        #: exercising the MVCC abort path end-to-end (chaos testing).
        self.fault_injector = None

    # -- schema ----------------------------------------------------------

    def create_hash_index(self, vertex_label: str, prop: str) -> None:
        """Register an equality index (must exist before inserts use it)."""
        self._hash_indexes.setdefault((vertex_label, prop), HashIndex())

    def create_ordered_index(self, vertex_label: str, prop: str) -> None:
        """Register a range-scannable index."""
        self._ordered_indexes.setdefault((vertex_label, prop),
                                         OrderedIndex())

    # -- transactions ------------------------------------------------------

    def transaction(self, isolation: IsolationLevel = IsolationLevel.SNAPSHOT,
                    ) -> "Transaction":
        """Begin a transaction (usable as a context manager)."""
        return Transaction(self, isolation)

    @property
    def last_committed(self) -> int:
        """Commit timestamp of the newest fully applied commit."""
        return self._last_committed

    @property
    def commit_count(self) -> int:
        return self._commits

    @property
    def abort_count(self) -> int:
        return self._aborts

    # -- internals used by Transaction ------------------------------------

    def _vertex_table(self, label: str) -> dict[int, _VertexRecord]:
        return self._vertices.setdefault(label, {})

    def _adjacency(self, label: str, direction: Direction,
                   ) -> dict[int, list[_EdgeRecord]]:
        table = self._out if direction is Direction.OUT else self._in
        return table.setdefault(label, {})

    def _apply_commit(self, txn: "Transaction") -> int:
        """Validate and apply a transaction's write set; return commit ts."""
        if telemetry.active:
            with telemetry.span(
                    "store.commit",
                    inserts=len(txn.new_vertices),
                    updates=len(txn.updated_vertices),
                    edges=len(txn.new_edges)):
                return self._apply_commit_locked(txn)
        return self._apply_commit_locked(txn)

    def _apply_commit_locked(self, txn: "Transaction") -> int:
        with self._commit_lock:
            if self.fault_injector is not None:
                self.fault_injector.before_commit(txn)
            snapshot = txn.snapshot
            for (label, vid), props in txn.new_vertices.items():
                record = self._vertex_table(label).get(vid)
                if record is not None and record.visible(
                        self._last_committed) is not None:
                    if record.last_ts > snapshot:
                        raise DuplicateError(
                            f"concurrent insert of {label}:{vid}")
                    raise DuplicateError(f"{label}:{vid} already exists")
            for (label, vid) in txn.updated_vertices:
                record = self._vertex_table(label).get(vid)
                if record is None or not record.versions:
                    raise NotFoundError(f"{label}:{vid} does not exist")
                if record.last_ts > snapshot:
                    raise WriteConflictError(
                        f"write-write conflict on {label}:{vid}")

            ts = self._last_committed + 1
            for (label, vid), props in txn.new_vertices.items():
                table = self._vertex_table(label)
                record = table.get(vid)
                if record is None:
                    record = table[vid] = _VertexRecord()
                record.versions.append((ts, props))
                self._index_vertex(label, vid, props, ts)
            for (label, vid), changes in txn.updated_vertices.items():
                record = self._vertex_table(label)[vid]
                base = record.visible(self._last_committed) or {}
                merged = {**base, **changes}
                record.versions.append((ts, merged))
                self._index_vertex(label, vid, changes, ts)
            for label, src, dst, props in txn.new_edges:
                self._adjacency(label, Direction.OUT).setdefault(
                    src, []).append(_EdgeRecord(dst, props, ts))
                self._adjacency(label, Direction.IN).setdefault(
                    dst, []).append(_EdgeRecord(src, props, ts))
                self._edge_appends[label] = \
                    self._edge_appends.get(label, 0) + 1
            if self.adjacency_cache is not None and txn.new_edges:
                # Invalidate touched keys before the timestamp publish;
                # the cache's serve-time snapshot-range check covers any
                # reader racing this window.
                self.adjacency_cache.invalidate(
                    key for label, src, dst, __ in txn.new_edges
                    for key in ((label, src, Direction.OUT),
                                (label, dst, Direction.IN)))
            # Publish: the new snapshot becomes visible atomically here.
            self._last_committed = ts
            self._commits += 1
            return ts

    def _index_vertex(self, label: str, vid: int, props: dict[str, Any],
                      ts: int) -> None:
        for (index_label, prop), index in self._hash_indexes.items():
            if index_label == label and prop in props:
                index.insert(props[prop], vid, ts)
        for (index_label, prop), index in self._ordered_indexes.items():
            if index_label == label and prop in props:
                index.insert(props[prop], vid, ts)

    # -- bulk-load fast path (no transaction, store must be quiescent) ----

    def bulk_insert_vertices(self, label: str,
                             rows: list[tuple[int, dict[str, Any]]]) -> None:
        """Load vertices at timestamp 1 without transaction overhead."""
        table = self._vertex_table(label)
        for vid, props in rows:
            if vid in table:
                raise DuplicateError(f"{label}:{vid} already exists")
            record = _VertexRecord()
            record.versions.append((1, props))
            table[vid] = record
        for (index_label, prop), index in self._hash_indexes.items():
            if index_label == label:
                for vid, props in rows:
                    if prop in props:
                        index.insert(props[prop], vid, 1)
        for (index_label, prop), index in self._ordered_indexes.items():
            if index_label == label:
                sortable = sorted((props[prop], vid, 1)
                                  for vid, props in rows if prop in props)
                if len(index) == 0:
                    index.extend_sorted(sortable)
                else:
                    for key, vid, ts in sortable:
                        index.insert(key, vid, ts)
        if self._last_committed < 1:
            self._last_committed = 1

    def bulk_insert_edges(self, label: str,
                          rows: list[tuple[int, int, dict | None]]) -> None:
        """Load directed edges at timestamp 1."""
        out_table = self._adjacency(label, Direction.OUT)
        in_table = self._adjacency(label, Direction.IN)
        for src, dst, props in rows:
            out_table.setdefault(src, []).append(_EdgeRecord(dst, props, 1))
            in_table.setdefault(dst, []).append(_EdgeRecord(src, props, 1))
        self._edge_appends[label] = \
            self._edge_appends.get(label, 0) + len(rows)
        if self.adjacency_cache is not None:
            self.adjacency_cache.clear()
        if self._last_committed < 1:
            self._last_committed = 1

    def bulk_insert_edge_halves(self, label: str,
                                halves: list[tuple[str, int, int,
                                                   dict | None]]) -> None:
        """Load directed adjacency *halves* at timestamp 1.

        A shard worker stores only the halves anchored at vertices it
        owns: each row is ``(direction value, anchor, other, props)``
        and lands in exactly one adjacency table — unlike
        :meth:`bulk_insert_edges`, which writes both the OUT and the IN
        record of every edge.
        """
        for dir_value, anchor, other, props in halves:
            self._adjacency(label, Direction(dir_value)).setdefault(
                anchor, []).append(_EdgeRecord(other, props, 1))
        self._edge_appends[label] = \
            self._edge_appends.get(label, 0) + len(halves)
        if self.adjacency_cache is not None:
            self.adjacency_cache.clear()
        if self._last_committed < 1:
            self._last_committed = 1

    # -- shard-worker apply path ------------------------------------------

    def apply_shard_writes(self, new_vertices: list[tuple[str, int, dict]],
                           edge_halves: list[tuple[str, str, int, int,
                                                   dict | None]]) -> int:
        """Apply one routed write-set atomically; returns the commit ts.

        This is the worker half of the sharded commit: the router has
        already run the update's insert logic and partitioned the
        resulting write-set, so this shard receives plain vertex rows
        ``(label, vid, props)`` plus adjacency halves
        ``(label, direction value, anchor, other, props)`` — only the
        halves anchored at vertices this shard owns.  Validation mirrors
        :meth:`_apply_commit_locked` for inserts (the SNB-Interactive
        update workload is insert-only): a vertex already visible
        raises :class:`~repro.errors.DuplicateError` and nothing is
        applied.
        """
        with self._commit_lock:
            self.validate_shard_writes(new_vertices)
            ts = self._last_committed + 1
            for label, vid, props in new_vertices:
                table = self._vertex_table(label)
                record = table.get(vid)
                if record is None:
                    record = table[vid] = _VertexRecord()
                record.versions.append((ts, props))
                self._index_vertex(label, vid, props, ts)
            for label, dir_value, anchor, other, props in edge_halves:
                self._adjacency(label, Direction(dir_value)).setdefault(
                    anchor, []).append(_EdgeRecord(other, props, ts))
                self._edge_appends[label] = \
                    self._edge_appends.get(label, 0) + 1
            if self.adjacency_cache is not None and edge_halves:
                self.adjacency_cache.invalidate(
                    (label, anchor, Direction(dir_value))
                    for label, dir_value, anchor, __, ___ in edge_halves)
            self._last_committed = ts
            self._commits += 1
            return ts

    def validate_shard_writes(self, new_vertices: list[tuple[str, int, dict]],
                              ) -> None:
        """First-committer-wins check for a routed write-set (prepare)."""
        for label, vid, __ in new_vertices:
            record = self._vertex_table(label).get(vid)
            if record is not None and record.visible(
                    self._last_committed) is not None:
                raise DuplicateError(f"{label}:{vid} already exists")


class Transaction:
    """A unit of work against the store; use as a context manager.

    Reads see the transaction's snapshot plus its own uncommitted writes.
    """

    def __init__(self, store: GraphStore, isolation: IsolationLevel) -> None:
        self.store = store
        self.isolation = isolation
        self._start_snapshot = store.last_committed
        self._done = False
        self.new_vertices: dict[tuple[str, int], dict[str, Any]] = {}
        self.updated_vertices: dict[tuple[str, int], dict[str, Any]] = {}
        self.new_edges: list[tuple[str, int, int, dict | None]] = []

    # -- lifecycle ---------------------------------------------------------

    def __enter__(self) -> "Transaction":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None and not self._done:
            self.commit()
        elif not self._done:
            self.abort()

    @property
    def snapshot(self) -> int:
        """The snapshot reads are served from."""
        if self.isolation is IsolationLevel.READ_COMMITTED:
            return self.store.last_committed
        return self._start_snapshot

    def commit(self) -> int:
        """Apply the write set; returns the commit timestamp (0 if empty)."""
        self._check_open()
        self._done = True
        if not (self.new_vertices or self.updated_vertices
                or self.new_edges):
            return 0
        try:
            return self.store._apply_commit(self)
        except Exception:
            self.store._aborts += 1
            raise

    def abort(self) -> None:
        """Discard the write set."""
        self._check_open()
        self._done = True
        if self.new_vertices or self.updated_vertices or self.new_edges:
            self.store._aborts += 1

    def _check_open(self) -> None:
        if self._done:
            raise TransactionStateError("transaction already finished")

    # -- writes -------------------------------------------------------------

    def insert_vertex(self, label: str, vid: int,
                      props: dict[str, Any]) -> None:
        self._check_open()
        key = (label, vid)
        if key in self.new_vertices:
            raise DuplicateError(f"{label}:{vid} inserted twice in txn")
        self.new_vertices[key] = props

    def update_vertex(self, label: str, vid: int, **changes: Any) -> None:
        self._check_open()
        key = (label, vid)
        if key in self.new_vertices:
            self.new_vertices[key] = {**self.new_vertices[key], **changes}
            return
        merged = {**self.updated_vertices.get(key, {}), **changes}
        self.updated_vertices[key] = merged

    def insert_edge(self, label: str, src: int, dst: int,
                    props: dict[str, Any] | None = None) -> None:
        self._check_open()
        self.new_edges.append((label, src, dst, props))

    def insert_undirected_edge(self, label: str, a: int, b: int,
                               props: dict[str, Any] | None = None) -> None:
        """Store an undirected edge as two directed ones."""
        self.insert_edge(label, a, b, props)
        self.insert_edge(label, b, a, props)

    # -- reads --------------------------------------------------------------

    def vertex(self, label: str, vid: int) -> dict[str, Any] | None:
        """Properties of a vertex, or None if not visible."""
        self._check_open()
        if not self.new_vertices and not self.updated_vertices:
            # Read-only fast path: no tuple keys, no overlay merging.
            table = self.store._vertices.get(label)
            record = table.get(vid) if table is not None else None
            return record.visible(self.snapshot) \
                if record is not None else None
        own = self.new_vertices.get((label, vid))
        committed = None
        record = self.store._vertices.get(label, {}).get(vid)
        if record is not None:
            committed = record.visible(self.snapshot)
        if own is not None:
            return {**(committed or {}), **own}
        if committed is not None:
            changes = self.updated_vertices.get((label, vid))
            if changes:
                return {**committed, **changes}
        return committed

    def require_vertex(self, label: str, vid: int) -> dict[str, Any]:
        """Like :meth:`vertex` but raises if missing."""
        props = self.vertex(label, vid)
        if props is None:
            raise NotFoundError(f"{label}:{vid} not visible")
        return props

    def vertex_exists(self, label: str, vid: int) -> bool:
        return self.vertex(label, vid) is not None

    def vertex_many(self, label: str, vids: Iterable[int],
                    ) -> dict[int, dict[str, Any]]:
        """Batched :meth:`vertex`: vid → props for the *visible* subset.

        One round trip on the sharded store (each shard resolves its
        owned slice of the batch); a plain loop here.
        """
        result: dict[int, dict[str, Any]] = {}
        for vid in vids:
            props = self.vertex(label, vid)
            if props is not None:
                result[vid] = props
        return result

    def neighbors(self, edge_label: str, vid: int,
                  direction: Direction = Direction.OUT,
                  ) -> Iterable[tuple[int, dict[str, Any] | None]]:
        """Visible ``(other id, edge props)`` pairs, as an iterable.

        With an adjacency cache attached and no transaction-local edges,
        this returns the materialized pair list itself — callers must
        only iterate it, never mutate it (the cache shares the list and
        replaces, rather than mutates, it on extension).
        """
        self._check_open()
        store = self.store
        cache = store.adjacency_cache
        if cache is not None and not self.new_edges:
            table = (store._out if direction is Direction.OUT
                     else store._in).get(edge_label)
            records = table.get(vid) if table is not None else None
            if records is None:
                return ()
            return cache.lookup(
                (edge_label, vid, direction), records, self.snapshot)
        return self._neighbors_scan(edge_label, vid, direction)

    def _neighbors_scan(self, edge_label: str, vid: int,
                        direction: Direction,
                        ) -> Iterator[tuple[int, dict[str, Any] | None]]:
        """Generator path: uncached stores and write transactions."""
        snapshot = self.snapshot
        table = (self.store._out if direction is Direction.OUT
                 else self.store._in).get(edge_label)
        if table is not None:
            # Take a length snapshot so concurrent appends past it (from
            # commits newer than our snapshot anyway) are not scanned.
            records = table.get(vid)
            if records is not None:
                cache = self.store.adjacency_cache
                if cache is not None:
                    yield from cache.lookup(
                        (edge_label, vid, direction), records, snapshot)
                else:
                    for position in range(len(records)):
                        record = records[position]
                        if record.ts <= snapshot:
                            yield record.other, record.props
        for label, src, dst, props in self.new_edges:
            if label != edge_label:
                continue
            if direction is Direction.OUT and src == vid:
                yield dst, props
            elif direction is Direction.IN and dst == vid:
                yield src, props

    def neighbors_many(self, edge_label: str, vids: Iterable[int],
                       direction: Direction = Direction.OUT,
                       ) -> dict[int, list[tuple[int, dict | None]]]:
        """Batched :meth:`neighbors`: vid → materialized pair list.

        The 2-hop traversals (``friends_within``, Q5's membership and
        container scans) go through this so the sharded store can
        scatter one request per shard and aggregate partial adjacency
        maps instead of paying one round trip per vertex.
        """
        return {vid: list(self.neighbors(edge_label, vid, direction))
                for vid in vids}

    def csr_snapshot(self, edge_label: str,
                     direction: Direction = Direction.OUT):
        """Packed whole-label adjacency for this snapshot, or None.

        Served from the store's :class:`~repro.store.csr.CSRCache` only
        when it is provably equivalent to per-record visibility checks:
        the transaction must hold the head snapshot and carry no edge
        writes of its own.  The build filters by ``ts <= snapshot``, and
        the cache keys validity on the label's pre-build append counter,
        so a commit racing the build merely forces the next lookup to
        rebuild — the raced entry was still correct for its reader.
        """
        self._check_open()
        store = self.store
        cache = store.csr_cache
        if cache is None or self.new_edges \
                or self.snapshot != store.last_committed:
            return None
        snapshot = self.snapshot
        counter = store._edge_appends.get(edge_label, 0)
        table = (store._out if direction is Direction.OUT
                 else store._in).get(edge_label) or {}

        def build():
            from .csr import CSRGraph

            return CSRGraph.from_adjacency(
                {vid: [record.other for record in records
                       if record.ts <= snapshot]
                 for vid, records in table.items()})

        return cache.lookup((edge_label, direction), counter, build)

    def degree(self, edge_label: str, vid: int,
               direction: Direction = Direction.OUT) -> int:
        """Number of visible neighbors."""
        visible = self.neighbors(edge_label, vid, direction)
        if isinstance(visible, (list, tuple)):
            return len(visible)
        return sum(1 for __ in visible)

    def lookup(self, vertex_label: str, prop: str, value: Any) -> list[int]:
        """Equality index lookup."""
        if telemetry.active:
            with telemetry.span("store.index.lookup",
                                label=vertex_label, prop=prop) as span:
                found = self._lookup(vertex_label, prop, value)
                span.set("matches", len(found))
                return found
        return self._lookup(vertex_label, prop, value)

    def _lookup(self, vertex_label: str, prop: str,
                value: Any) -> list[int]:
        self._check_open()
        index = self.store._hash_indexes.get((vertex_label, prop))
        if index is None:
            raise NotFoundError(
                f"no hash index on {vertex_label}.{prop}")
        found = index.lookup(value, self.snapshot)
        for (label, vid), props in self.new_vertices.items():
            if label == vertex_label and props.get(prop) == value:
                found.append(vid)
        return found

    def scan_range(self, vertex_label: str, prop: str, low: Any = None,
                   high: Any = None, *, reverse: bool = False,
                   ) -> Iterator[tuple[Any, int]]:
        """Ordered index range scan: yields ``(key, vertex id)``."""
        self._check_open()
        index = self.store._ordered_indexes.get((vertex_label, prop))
        if index is None:
            raise NotFoundError(
                f"no ordered index on {vertex_label}.{prop}")
        if telemetry.active:
            # Range scans are consumed lazily, so a span would mostly
            # measure the consumer; count them instead.
            telemetry.counter("store.index.range_scans").inc()
        yield from index.range(low, high, snapshot=self.snapshot,
                               reverse=reverse)

    def vertices(self, label: str,
                 ) -> Iterator[tuple[int, dict[str, Any]]]:
        """All visible ``(vertex id, props)`` pairs of one label.

        A full-label scan at the transaction's snapshot (plus its own
        uncommitted inserts); the validation harness uses it to build
        canonical whole-graph state snapshots.
        """
        self._check_open()
        snapshot = self.snapshot
        for vid, record in self.store._vertices.get(label, {}).items():
            props = record.visible(snapshot)
            if props is not None:
                yield vid, props
        for (lbl, vid), props in self.new_vertices.items():
            if lbl == label:
                yield vid, props

    def edges(self, edge_label: str,
              ) -> Iterator[tuple[int, int, dict[str, Any] | None]]:
        """All visible ``(src, dst, props)`` triples of one edge label.

        Scans the OUT adjacency tables at the snapshot; undirected edges
        (stored as two directed records) yield both directions.
        """
        self._check_open()
        snapshot = self.snapshot
        for src, records in self.store._out.get(edge_label, {}).items():
            for position in range(len(records)):
                record = records[position]
                if record.ts <= snapshot:
                    yield src, record.other, record.props
        for label, src, dst, props in self.new_edges:
            if label == edge_label:
                yield src, dst, props

    def count_vertices(self, label: str) -> int:
        """Number of visible vertices with the label (scan)."""
        self._check_open()
        snapshot = self.snapshot
        table = self.store._vertices.get(label, {})
        total = sum(1 for record in table.values()
                    if record.visible(snapshot) is not None)
        total += sum(1 for (lbl, __) in self.new_vertices if lbl == label)
        return total
