"""Storage accounting (paper Table 8: sizes of largest tables/indices).

The paper reports allocated megabytes per table and largest index for the
Virtuoso SF300 load.  Our equivalent: recursively estimated in-memory bytes
of each vertex table, adjacency table and secondary index, so the Table 8
bench can print the same "3 largest tables + their biggest index" rows.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass

from .graph import GraphStore


def deep_size(obj, _seen: set[int] | None = None, _depth: int = 0) -> int:
    """Approximate recursive ``sys.getsizeof`` (cycle-safe, depth-capped)."""
    if _seen is None:
        _seen = set()
    identity = id(obj)
    if identity in _seen or _depth > 8:
        return 0
    _seen.add(identity)
    size = sys.getsizeof(obj)
    if isinstance(obj, dict):
        for key, value in obj.items():
            size += deep_size(key, _seen, _depth + 1)
            size += deep_size(value, _seen, _depth + 1)
    elif isinstance(obj, (list, tuple, set, frozenset)):
        for item in obj:
            size += deep_size(item, _seen, _depth + 1)
    elif hasattr(obj, "__slots__"):
        for slot in obj.__slots__:
            if hasattr(obj, slot):
                size += deep_size(getattr(obj, slot), _seen, _depth + 1)
    elif hasattr(obj, "__dict__"):
        size += deep_size(obj.__dict__, _seen, _depth + 1)
    return size


@dataclass
class TableSize:
    """One row of the storage report."""

    name: str
    kind: str          # "vertices" | "edges" | "index"
    entries: int
    bytes: int

    @property
    def megabytes(self) -> float:
        return self.bytes / (1024.0 * 1024.0)


@dataclass
class StorageReport:
    """All table/index sizes of a loaded store."""

    tables: list[TableSize]

    @property
    def total_bytes(self) -> int:
        return sum(table.bytes for table in self.tables)

    def largest(self, count: int = 3, kind: str | None = None,
                ) -> list[TableSize]:
        pool = [t for t in self.tables if kind is None or t.kind == kind]
        return sorted(pool, key=lambda t: t.bytes, reverse=True)[:count]


def storage_report(store: GraphStore) -> StorageReport:
    """Measure every vertex table, adjacency table and index."""
    tables: list[TableSize] = []
    for label, table in store._vertices.items():
        tables.append(TableSize(label, "vertices", len(table),
                                deep_size(table)))
    for label, table in store._out.items():
        entries = sum(len(records) for records in table.values())
        # The IN direction mirrors OUT; count both sides as one edge table.
        in_table = store._in.get(label, {})
        size = deep_size(table) + deep_size(in_table)
        tables.append(TableSize(label, "edges", entries, size))
    for (label, prop), index in store._hash_indexes.items():
        tables.append(TableSize(f"{label}.{prop} (hash)", "index",
                                len(index), deep_size(index._entries)))
    for (label, prop), index in store._ordered_indexes.items():
        tables.append(TableSize(f"{label}.{prop} (ordered)", "index",
                                len(index), deep_size(index._rows)))
    return StorageReport(tables)
