"""Transactional in-memory property-graph store (the "Sparksee" SUT).

The paper requires that "all transactions have ACID guarantees, with
serializability as a consistency requirement.  Note that given the nature
of the update workload, systems providing snapshot isolation behave
identically to serializable."  This store implements multi-version
concurrency control with snapshot isolation (first-committer-wins
write-write conflict detection); because the SNB-Interactive update
workload is insert-only, SI is indeed serializable here.

Highlights:

* versioned vertices and append-only adjacency lists; readers never block
  and never take locks — commits serialize on a single commit mutex and
  publish a new snapshot atomically;
* hash and ordered (range-scannable) secondary indexes, also versioned;
* storage accounting per table/index (paper Table 8);
* a bulk loader mapping a generated :class:`~repro.schema.SocialNetwork`
  onto the SNB graph schema.
"""

from .graph import Direction, GraphStore, IsolationLevel, Transaction
from .loader import EdgeLabel, VertexLabel, load_network
from .accounting import StorageReport, storage_report
from .wal import WriteAheadLog, attach_wal, recover_store

__all__ = [
    "Direction",
    "EdgeLabel",
    "GraphStore",
    "IsolationLevel",
    "StorageReport",
    "Transaction",
    "VertexLabel",
    "WriteAheadLog",
    "attach_wal",
    "load_network",
    "recover_store",
    "storage_report",
]
