"""End-to-end tracing and observability for the reproduction.

The subsystem has three parts:

* hierarchical **spans** with thread-local context propagation
  (:mod:`repro.telemetry.context`) — driver scheduler partitions,
  connector calls, queries, engine operators, store commits and datagen
  stages nest into one tree per thread;
* a **metric registry** (:mod:`repro.telemetry.metrics`) — counters,
  gauges and histograms with nearest-rank percentile snapshots;
* **exporters** (:mod:`repro.telemetry.exporters`) — JSON-lines span
  logs, Chrome ``trace_event`` JSON for ``about:tracing``/Perfetto, and
  plain-text summary tables.

Zero cost when disabled
-----------------------

Tracing is off by default and instrumented hot paths guard every span
with a **module-level flag check**::

    from repro import telemetry

    if telemetry.active:
        with telemetry.span("engine.HashJoin"):
            work()
    else:
        work()

``telemetry.active`` is a plain module attribute, so the disabled branch
costs one attribute load and a jump — no allocation, no context-manager
machinery (``benchmarks/bench_telemetry_overhead.py`` measures this).
:func:`enable` installs a :class:`Tracer` and flips the flag;
:func:`disable` flips it back and returns the tracer for export.

The default :class:`MetricRegistry` is *always* available (counters such
as the WAL's torn-record warning count are useful even without tracing);
:func:`enable` optionally swaps in a fresh one.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Iterator

from .bridge import (
    GC_TIMEOUT_COUNTER,
    GC_WAIT_HISTOGRAM,
    publish_driver_metrics,
    publish_resilience_report,
)
from .context import Span, Tracer
from .exporters import (
    chrome_trace_events,
    render_metrics,
    render_span_summary,
    render_wait_breakdown,
    wait_time_breakdown,
    write_chrome_trace,
    write_spans_jsonl,
)
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    HistogramSnapshot,
    MetricRegistry,
    percentile,
)

__all__ = [
    "GC_TIMEOUT_COUNTER",
    "GC_WAIT_HISTOGRAM",
    "Counter",
    "Gauge",
    "Histogram",
    "HistogramSnapshot",
    "MetricRegistry",
    "Span",
    "Tracer",
    "active",
    "add_span",
    "chrome_trace_events",
    "counter",
    "current_span",
    "disable",
    "enable",
    "gauge",
    "get_registry",
    "get_tracer",
    "histogram",
    "percentile",
    "publish_driver_metrics",
    "publish_resilience_report",
    "render_metrics",
    "render_span_summary",
    "render_wait_breakdown",
    "span",
    "wait_time_breakdown",
    "write_chrome_trace",
    "write_spans_jsonl",
]

#: THE guard flag. Instrumented code reads this attribute directly
#: (``telemetry.active``); it is True exactly while a tracer is installed.
active: bool = False

_tracer: Tracer | None = None
_registry: MetricRegistry = MetricRegistry()


def enable(tracer: Tracer | None = None,
           fresh_registry: bool = False) -> Tracer:
    """Install a tracer (a new one by default) and start recording.

    Re-enabling while active replaces the tracer.  With
    ``fresh_registry`` the default metric registry is reset too, so a
    traced run starts from clean counters.
    """
    global active, _tracer, _registry
    _tracer = tracer or Tracer()
    if fresh_registry:
        _registry = MetricRegistry()
    active = True
    return _tracer


def disable() -> Tracer | None:
    """Stop recording; returns the tracer that was active (for export)."""
    global active, _tracer
    active = False
    tracer, _tracer = _tracer, None
    return tracer


def get_tracer() -> Tracer | None:
    """The active tracer, or None when tracing is disabled."""
    return _tracer


def get_registry() -> MetricRegistry:
    """The process-wide default metric registry (always available)."""
    return _registry


@contextmanager
def _null_span() -> Iterator[Span | None]:
    yield None


def span(name: str, **attributes: Any):
    """Open a span on the active tracer (no-op context when disabled).

    Hot paths should guard with ``telemetry.active`` instead of relying
    on the no-op fallback; the fallback exists so that cold paths and
    tests can call :func:`span` unconditionally.
    """
    tracer = _tracer
    if tracer is None:
        return _null_span()
    return tracer.span(name, **attributes)


def add_span(name: str, start: float, end: float,
             thread_id: int | None = None,
             thread_name: str | None = None,
             **attributes: Any) -> Span | None:
    """Record a pre-timed span on the active tracer (None when off).

    ``thread_id``/``thread_name`` give the span its own track — used
    when stitching spans recorded inside datagen worker processes into
    the parent trace.
    """
    tracer = _tracer
    if tracer is None:
        return None
    return tracer.add_span(name, start, end, thread_id=thread_id,
                           thread_name=thread_name, **attributes)


def current_span() -> Span | None:
    """The calling thread's innermost open span (None when off)."""
    tracer = _tracer
    if tracer is None:
        return None
    return tracer.current_span()


def counter(name: str) -> Counter:
    """Counter from the default registry."""
    return _registry.counter(name)


def gauge(name: str) -> Gauge:
    """Gauge from the default registry."""
    return _registry.gauge(name)


def histogram(name: str) -> Histogram:
    """Histogram from the default registry."""
    return _registry.histogram(name)
