"""Metric primitives: counters, gauges, histograms, and the registry.

This module is also the home of the one nearest-rank percentile
implementation shared by the whole codebase — driver latency stats,
bench tables and telemetry snapshots all import it from here, so the
edge cases (empty input, single sample, fraction 0/1) are tested once.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Iterator


def percentile(values: list[float], fraction: float) -> float:
    """Nearest-rank percentile of a non-empty list (fraction in [0,1])."""
    if not values:
        raise ValueError("cannot take a percentile of nothing")
    ordered = sorted(values)
    rank = min(int(fraction * len(ordered)), len(ordered) - 1)
    return ordered[rank]


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("name", "_lock", "_value")

    def __init__(self, name: str) -> None:
        self.name = name
        self._lock = threading.Lock()
        self._value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        with self._lock:
            return self._value


class Gauge:
    """Last-written value (e.g. a final run statistic)."""

    __slots__ = ("name", "_lock", "_value")

    def __init__(self, name: str) -> None:
        self.name = name
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


@dataclass(frozen=True)
class HistogramSnapshot:
    """Point-in-time percentile summary of one histogram."""

    name: str
    count: int
    sum: float
    min: float
    max: float
    mean: float
    p50: float
    p95: float
    p99: float


class Histogram:
    """Sample collector with nearest-rank percentile snapshots.

    Samples are kept raw (the workloads instrumented here produce at
    most a few hundred thousand observations per run), so snapshots are
    exact, matching what :class:`~repro.driver.metrics.LatencyRecorder`
    reports for the same data.
    """

    __slots__ = ("name", "_lock", "_samples")

    def __init__(self, name: str) -> None:
        self.name = name
        self._lock = threading.Lock()
        self._samples: list[float] = []

    def observe(self, value: float) -> None:
        with self._lock:
            self._samples.append(value)

    @property
    def count(self) -> int:
        with self._lock:
            return len(self._samples)

    def values(self) -> list[float]:
        with self._lock:
            return list(self._samples)

    def snapshot(self) -> HistogramSnapshot | None:
        """Percentile summary, or None if nothing was observed."""
        samples = self.values()
        if not samples:
            return None
        return HistogramSnapshot(
            name=self.name,
            count=len(samples),
            sum=sum(samples),
            min=min(samples),
            max=max(samples),
            mean=sum(samples) / len(samples),
            p50=percentile(samples, 0.50),
            p95=percentile(samples, 0.95),
            p99=percentile(samples, 0.99),
        )


class MetricRegistry:
    """Named metrics, created on first use, each name one kind."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}

    def _get(self, name: str, kind: type):
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = self._metrics[name] = kind(name)
            elif not isinstance(metric, kind):
                raise ValueError(
                    f"metric {name!r} already registered as "
                    f"{type(metric).__name__}")
            return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def __iter__(self) -> Iterator[Counter | Gauge | Histogram]:
        with self._lock:
            metrics = list(self._metrics.values())
        return iter(sorted(metrics, key=lambda m: m.name))

    def __len__(self) -> int:
        with self._lock:
            return len(self._metrics)

    def snapshot(self) -> dict[str, object]:
        """Name → value (counters/gauges) or HistogramSnapshot."""
        result: dict[str, object] = {}
        for metric in self:
            if isinstance(metric, Histogram):
                result[metric.name] = metric.snapshot()
            else:
                result[metric.name] = metric.value
        return result

    def clear(self) -> None:
        with self._lock:
            self._metrics.clear()
