"""Span and metric exporters.

Three formats:

* **JSON lines** — one span per line, full fidelity (ids, parents,
  threads, attributes); the machine-readable artifact.
* **Chrome trace events** — a ``{"traceEvents": [...]}`` document of
  complete (``"ph": "X"``) events, loadable in ``about:tracing`` or
  https://ui.perfetto.dev for a flame-graph view of a run.  Span
  hierarchy is preserved both visually (nesting per thread track) and
  explicitly (``args.span_id`` / ``args.parent_id``).
* **plain text** — per-span-name summary table and the per-partition
  wait-time breakdown, for terminal output next to the bench tables.
"""

from __future__ import annotations

import json
import os
from typing import IO, Iterable

from ..bench.tables import format_table
from .context import Span, Tracer
from .metrics import MetricRegistry, percentile


def _spans_of(source: Tracer | Iterable[Span]) -> list[Span]:
    if isinstance(source, Tracer):
        return source.finished_spans()
    return list(source)


def _epoch_of(source: Tracer | Iterable[Span],
              spans: list[Span]) -> float:
    if isinstance(source, Tracer):
        return source.epoch
    return min((span.start for span in spans), default=0.0)


def span_to_dict(span: Span, epoch: float = 0.0) -> dict:
    """JSON-serializable rendering of one span (times in µs from epoch)."""
    end = span.end if span.end is not None else span.start
    return {
        "name": span.name,
        "span_id": span.span_id,
        "parent_id": span.parent_id,
        "thread_id": span.thread_id,
        "thread_name": span.thread_name,
        "start_us": (span.start - epoch) * 1e6,
        "duration_us": (end - span.start) * 1e6,
        "attributes": span.attributes,
    }


def write_spans_jsonl(source: Tracer | Iterable[Span],
                      path: str | os.PathLike) -> int:
    """Write one JSON object per span; returns the number written."""
    spans = _spans_of(source)
    epoch = _epoch_of(source, spans)
    with open(path, "w", encoding="utf-8") as handle:
        for span in spans:
            handle.write(json.dumps(span_to_dict(span, epoch),
                                    separators=(",", ":"), default=str))
            handle.write("\n")
    return len(spans)


def chrome_trace_events(source: Tracer | Iterable[Span]) -> list[dict]:
    """Spans as Chrome ``trace_event`` complete events.

    Each distinct ``(tid, thread_name)`` also gets a ``thread_name``
    metadata event, so datagen worker tracks (whose tid is the worker
    pid) render with their names in about:tracing/Perfetto instead of
    as bare numbers.
    """
    spans = _spans_of(source)
    epoch = _epoch_of(source, spans)
    pid = os.getpid()
    events = []
    track_names: dict[int, str] = {}
    for span in spans:
        end = span.end if span.end is not None else span.start
        args = {"span_id": span.span_id, "parent_id": span.parent_id}
        args.update(span.attributes)
        track_names.setdefault(span.thread_id, span.thread_name)
        events.append({
            "name": span.name,
            "cat": span.name.split(".", 1)[0],
            "ph": "X",
            "ts": (span.start - epoch) * 1e6,
            "dur": (end - span.start) * 1e6,
            "pid": pid,
            "tid": span.thread_id,
            "args": args,
        })
    events.sort(key=lambda event: (event["tid"], event["ts"]))
    metadata = [{
        "name": "thread_name",
        "ph": "M",
        "pid": pid,
        "tid": tid,
        "args": {"name": name},
    } for tid, name in sorted(track_names.items()) if name]
    return metadata + events


def write_chrome_trace(source: Tracer | Iterable[Span],
                       path: str | os.PathLike,
                       handle: IO[str] | None = None) -> int:
    """Write an ``about:tracing``-loadable JSON document.

    Returns the number of trace events written.
    """
    events = chrome_trace_events(source)
    document = {"traceEvents": events, "displayTimeUnit": "ms"}
    if handle is not None:
        json.dump(document, handle, default=str)
    else:
        with open(path, "w", encoding="utf-8") as out:
            json.dump(document, out, default=str)
    return len(events)


def render_span_summary(source: Tracer | Iterable[Span],
                        title: str = "telemetry span summary") -> str:
    """Per-span-name table: count, total, mean, p50/p95/p99, max (ms)."""
    by_name: dict[str, list[float]] = {}
    for span in _spans_of(source):
        by_name.setdefault(span.name, []).append(
            span.duration_seconds * 1000.0)
    rows = []
    for name in sorted(by_name):
        durations = by_name[name]
        rows.append([
            name,
            len(durations),
            sum(durations),
            sum(durations) / len(durations),
            percentile(durations, 0.50),
            percentile(durations, 0.95),
            percentile(durations, 0.99),
            max(durations),
        ])
    return format_table(
        ["span", "count", "total_ms", "mean_ms", "p50_ms", "p95_ms",
         "p99_ms", "max_ms"], rows, title=title)


def wait_time_breakdown(source: Tracer | Iterable[Span],
                        ) -> dict[str, dict[str, float]]:
    """Per scheduler-partition seconds spent working vs waiting on T_GC.

    Returns ``partition span name → {"total", "gc_wait", "execute"}``;
    the wait figures come from the ``scheduler.wait.gc`` spans nested
    under each partition, the execute figures from the ``op.*`` spans.
    """
    spans = _spans_of(source)
    partitions = {span.span_id: span for span in spans
                  if span.name.startswith("scheduler.partition.")}
    by_id = {span.span_id: span for span in spans}

    def owning_partition(span: Span) -> Span | None:
        seen = set()
        current: Span | None = span
        while current is not None and current.span_id not in seen:
            seen.add(current.span_id)
            if current.span_id in partitions:
                return current
            current = by_id.get(current.parent_id) \
                if current.parent_id is not None else None
        return None

    breakdown = {
        span.name: {"total": span.duration_seconds,
                    "gc_wait": 0.0, "execute": 0.0}
        for span in partitions.values()}
    for span in spans:
        bucket = None
        if span.name == "scheduler.wait.gc":
            bucket = "gc_wait"
        elif span.name.startswith("op."):
            bucket = "execute"
        if bucket is None:
            continue
        partition = owning_partition(span)
        if partition is not None:
            breakdown[partition.name][bucket] += span.duration_seconds
    return breakdown


def render_wait_breakdown(source: Tracer | Iterable[Span]) -> str:
    """The wait-time breakdown as an aligned text table."""
    breakdown = wait_time_breakdown(source)
    rows = []
    for name in sorted(breakdown):
        entry = breakdown[name]
        rows.append([name, entry["total"], entry["gc_wait"],
                     entry["execute"],
                     entry["total"] - entry["gc_wait"] - entry["execute"]])
    return format_table(
        ["partition", "total_s", "gc_wait_s", "execute_s", "other_s"],
        rows, title="scheduler wait-time breakdown")


def render_metrics(registry: MetricRegistry,
                   title: str = "telemetry metrics") -> str:
    """Registry snapshot as an aligned text table."""
    from .metrics import HistogramSnapshot

    rows = []
    for name, value in registry.snapshot().items():
        if value is None:
            continue
        if isinstance(value, HistogramSnapshot):
            rows.append([name,
                         f"n={value.count} mean={value.mean:.6f} "
                         f"p50={value.p50:.6f} p99={value.p99:.6f} "
                         f"max={value.max:.6f}"])
        else:
            rows.append([name, value])
    return format_table(["metric", "value"], rows, title=title)
