"""Hierarchical spans with thread-local context propagation.

A :class:`Span` is one timed region of work; a :class:`Tracer` collects
finished spans from any number of threads.  Each thread carries its own
stack of open spans, so a span started while another is open becomes its
child (``scheduler.partition.3`` → ``op.Complex2`` → ``engine.HashJoin``)
without any explicit plumbing through the call chain.

Spans survive suspension inside generators: the volcano engine opens an
operator span when iteration starts and closes it when the generator is
exhausted *or* garbage-collected, which can pop spans out of LIFO order
(a ``Limit`` abandons its child mid-stream).  :meth:`Tracer.end_span`
therefore removes a span from wherever it sits on the stack rather than
requiring it to be on top.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Any, Callable, Iterator


class Span:
    """One timed, attributed region of work."""

    __slots__ = ("name", "span_id", "parent_id", "thread_id",
                 "thread_name", "start", "end", "attributes")

    def __init__(self, name: str, span_id: int, parent_id: int | None,
                 thread_id: int, thread_name: str, start: float) -> None:
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.thread_id = thread_id
        self.thread_name = thread_name
        self.start = start
        self.end: float | None = None
        self.attributes: dict[str, Any] = {}

    @property
    def duration_seconds(self) -> float:
        """Elapsed seconds (0.0 while the span is still open)."""
        if self.end is None:
            return 0.0
        return self.end - self.start

    def set(self, key: str, value: Any) -> "Span":
        """Attach one attribute; returns self for chaining."""
        self.attributes[key] = value
        return self

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Span({self.name!r}, id={self.span_id}, "
                f"parent={self.parent_id}, "
                f"dur={self.duration_seconds * 1000:.3f}ms)")


class Tracer:
    """Thread-safe collector of hierarchical spans.

    All timestamps come from one monotonic clock (``time.perf_counter``
    by default) relative to :attr:`epoch`, taken at construction, so
    spans from different threads share a timeline.
    """

    def __init__(self, clock: Callable[[], float] = time.perf_counter,
                 ) -> None:
        self._clock = clock
        self.epoch = clock()
        self._lock = threading.Lock()
        self._spans: list[Span] = []
        self._locals = threading.local()
        self._next_id = 1

    # -- span lifecycle ----------------------------------------------------

    def _stack(self) -> list[Span]:
        stack = getattr(self._locals, "stack", None)
        if stack is None:
            stack = self._locals.stack = []
        return stack

    def _allocate_id(self) -> int:
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
            return span_id

    def start_span(self, name: str, **attributes: Any) -> Span:
        """Open a span as a child of the thread's current span."""
        stack = self._stack()
        thread = threading.current_thread()
        span = Span(
            name=name,
            span_id=self._allocate_id(),
            parent_id=stack[-1].span_id if stack else None,
            thread_id=thread.ident or 0,
            thread_name=thread.name,
            start=self._clock(),
        )
        if attributes:
            span.attributes.update(attributes)
        stack.append(span)
        return span

    def end_span(self, span: Span) -> None:
        """Close a span and hand it to the collector.

        Tolerates out-of-LIFO closing (generator teardown): the span is
        removed from wherever it sits on this thread's stack; any spans
        above it keep their recorded parent.
        """
        if span.end is not None:
            return
        span.end = self._clock()
        stack = self._stack()
        for position in range(len(stack) - 1, -1, -1):
            if stack[position] is span:
                del stack[position]
                break
        with self._lock:
            self._spans.append(span)

    @contextmanager
    def span(self, name: str, **attributes: Any) -> Iterator[Span]:
        """Context manager opening/closing one span."""
        span = self.start_span(name, **attributes)
        try:
            yield span
        finally:
            self.end_span(span)

    def add_span(self, name: str, start: float, end: float,
                 thread_id: int | None = None,
                 thread_name: str | None = None,
                 **attributes: Any) -> Span:
        """Record an already-timed region (clock timestamps).

        Used by code that measured itself (e.g. datagen stage timings);
        the span is parented to the thread's current open span.

        ``thread_id``/``thread_name`` override the recorded track:
        spans stitched in from datagen worker *processes* carry the
        worker's pid so each worker renders as its own timeline in the
        Chrome trace instead of piling onto the parent thread.
        """
        stack = self._stack()
        thread = threading.current_thread()
        span = Span(
            name=name,
            span_id=self._allocate_id(),
            parent_id=stack[-1].span_id if stack else None,
            thread_id=thread_id if thread_id is not None
            else (thread.ident or 0),
            thread_name=thread_name if thread_name is not None
            else thread.name,
            start=start,
        )
        span.end = end
        if attributes:
            span.attributes.update(attributes)
        with self._lock:
            self._spans.append(span)
        return span

    # -- views --------------------------------------------------------------

    def current_span(self) -> Span | None:
        """The innermost open span of the calling thread, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    def finished_spans(self) -> list[Span]:
        """Snapshot of all closed spans (collection order)."""
        with self._lock:
            return list(self._spans)

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)
