"""Bridge from driver run metrics into the telemetry registry.

The driver's :class:`~repro.driver.metrics.DriverMetrics` predates this
subsystem and stays the canonical run result; this bridge republishes it
into a :class:`~repro.telemetry.metrics.MetricRegistry` so one snapshot
(and one set of exporters) covers latencies, throughput *and* the
wait-time instrumentation the scheduler records directly — which is what
lets bench tables show per-class latency next to T_GC wait breakdowns.
"""

from __future__ import annotations

from .metrics import MetricRegistry

#: Histogram fed by the scheduler with per-wait T_GC blocking seconds.
GC_WAIT_HISTOGRAM = "driver.gc_wait_seconds"
#: Counter of dependency-wait timeouts (wedged-run detector trips).
GC_TIMEOUT_COUNTER = "driver.gc_wait_timeouts"
#: Gauge prefixes of the resilience accounting published per run.
RETRIES_GAUGE = "driver.retries"
SKIPPED_GAUGE = "driver.skipped_ops"
BREAKER_TRIPS_GAUGE = "driver.breaker_trips"
OP_TIMEOUTS_GAUGE = "driver.op_timeouts"


def publish_driver_metrics(metrics, registry: MetricRegistry) -> None:
    """Publish a DriverMetrics object's figures as telemetry metrics.

    ``metrics`` is duck-typed (anything with ``wall_seconds``,
    ``operations``, ``throughput``, ``late_fraction``, ``max_lateness``
    and a ``per_class`` mapping of ClassStats) so this module does not
    import the driver package.
    """
    registry.gauge("driver.wall_seconds").set(metrics.wall_seconds)
    registry.gauge("driver.operations").set(metrics.operations)
    registry.gauge("driver.throughput_ops").set(metrics.throughput)
    registry.gauge("driver.late_fraction").set(metrics.late_fraction)
    registry.gauge("driver.max_lateness_seconds").set(metrics.max_lateness)
    for name, stats in metrics.per_class.items():
        prefix = f"driver.latency_ms.{name}"
        registry.gauge(f"{prefix}.count").set(stats.count)
        registry.gauge(f"{prefix}.mean").set(stats.mean_ms)
        registry.gauge(f"{prefix}.p50").set(stats.p50_ms)
        registry.gauge(f"{prefix}.p95").set(stats.p95_ms)
        registry.gauge(f"{prefix}.p99").set(stats.p99_ms)
        registry.gauge(f"{prefix}.max").set(stats.max_ms)


def publish_resilience_report(report, registry: MetricRegistry) -> None:
    """Publish a run's resilience accounting as telemetry metrics.

    ``report`` is duck-typed (``retries``, ``retries_by_class``,
    ``skipped``, ``skipped_by_class``, ``breaker_trips``,
    ``op_timeouts``) so this module stays driver-import-free.
    """
    registry.gauge(f"{RETRIES_GAUGE}.total").set(report.retries)
    for name, count in report.retries_by_class.items():
        registry.gauge(f"{RETRIES_GAUGE}.{name}").set(count)
    registry.gauge(SKIPPED_GAUGE).set(report.skipped)
    for name, count in report.skipped_by_class.items():
        registry.gauge(f"{SKIPPED_GAUGE}.{name}").set(count)
    registry.gauge(BREAKER_TRIPS_GAUGE).set(report.breaker_trips)
    registry.gauge(OP_TIMEOUTS_GAUGE).set(report.op_timeouts)
