"""Parameter curation (paper §4.1, TPCTC'14 [6]).

Uniformly sampled query parameters yield wildly varying runtimes on the
correlated SNB graph (Fig. 5) — the 2-hop friendship circle is multimodal
and heavy-tailed, so e.g. Q5's runtime spans two orders of magnitude.
Curation selects parameter bindings whose *intermediate result sizes*
(``C_out``) are as equal as possible across the intended query plan,
yielding properties P1 (bounded runtime variance), P2 (stable distribution
across streams) and P3 (one optimal plan per template).

Pipeline:

1. :mod:`repro.curation.pc_table` materializes Parameter-Count tables from
   the frequency statistics DATAGEN keeps as a by-product;
2. :mod:`repro.curation.greedy` runs the greedy minimal-variance window
   refinement over the PC table columns;
3. :mod:`repro.curation.buckets` handles continuous parameters
   (timestamps) by month-bucketing;
4. :mod:`repro.curation.curator` binds it all to the 14 query templates.
"""

from .buckets import bucket_key, bucket_timestamps
from .curator import CuratedWorkloadParams, ParameterCurator
from .greedy import GreedySelection, greedy_select
from .pc_table import ParameterCountTable

__all__ = [
    "CuratedWorkloadParams",
    "GreedySelection",
    "ParameterCountTable",
    "ParameterCurator",
    "bucket_key",
    "bucket_timestamps",
    "greedy_select",
]
