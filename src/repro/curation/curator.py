"""Binding parameter curation to the 14 SNB query templates.

For every complex query template this module assembles the right
Parameter-Count table, runs the greedy selection, and materializes typed
parameter objects (the ``QnParams`` dataclasses).  Multi-parameter
templates (paper: "Person and Timestamp (of her posts)", "Person, her
Name and her Country") combine a curated person sample with stable
timestamp buckets / frequency-matched secondary values.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from ..datagen.stats import FrequencyStatistics
from ..errors import CurationError
from ..rng import RandomStream
from ..schema.dataset import SocialNetwork
from ..schema.entities import PlaceType
from ..queries.complex_reads import (
    q1,
    q2,
    q3,
    q4,
    q5,
    q6,
    q7,
    q8,
    q9,
    q10,
    q11,
    q12,
    q13,
    q14,
)
from .buckets import bucket_midpoint, bucket_timestamps, stable_buckets
from .greedy import greedy_select, uniform_select
from .pc_table import (
    ParameterCountTable,
    pc_table_own_messages,
    pc_table_q2,
    pc_table_two_hop,
)


@dataclass
class CuratedWorkloadParams:
    """Per-query curated parameter bindings for one benchmark run."""

    by_query: dict[int, list] = field(default_factory=dict)

    def params_for(self, query_id: int) -> list:
        bindings = self.by_query.get(query_id)
        if not bindings:
            raise CurationError(f"no curated parameters for Q{query_id}")
        return bindings

    def subset(self, k: int) -> "CuratedWorkloadParams":
        """The first ``k`` bindings of every template (cheap runs)."""
        return CuratedWorkloadParams(by_query={
            query_id: bindings[:k]
            for query_id, bindings in self.by_query.items()})

    def as_dicts(self) -> dict[int, list[dict]]:
        """JSON-able form: query id → list of binding field dicts."""
        from dataclasses import asdict

        return {query_id: [asdict(binding) for binding in bindings]
                for query_id, bindings in self.by_query.items()}

    @classmethod
    def from_dicts(cls, data: dict) -> "CuratedWorkloadParams":
        """Rebuild typed bindings from :meth:`as_dicts` output (JSON
        round-trips turn the query-id keys into strings; both accepted)."""
        from ..queries.registry import COMPLEX_QUERIES

        by_query: dict[int, list] = {}
        for key, dicts in data.items():
            query_id = int(key)
            params_type = COMPLEX_QUERIES[query_id].params_type
            by_query[query_id] = [params_type(**d) for d in dicts]
        return cls(by_query=by_query)


class ParameterCurator:
    """Produces curated (and uniform-baseline) parameters for a network."""

    def __init__(self, network: SocialNetwork,
                 stats: FrequencyStatistics | None = None,
                 seed: int = 0) -> None:
        self.network = network
        self.stats = stats if stats is not None \
            else FrequencyStatistics.of(network)
        self.seed = seed
        self._countries = [p for p in network.places
                           if p.type is PlaceType.COUNTRY]
        self._message_timestamps = [m.creation_date
                                    for m in network.messages()]

    # -- table access ------------------------------------------------------

    def table_for(self, query_id: int) -> ParameterCountTable:
        """The PC table matching a query's intended plan."""
        if query_id in (2, 4):
            return pc_table_q2(self.stats)
        if query_id in (7, 8):
            return pc_table_own_messages(self.stats)
        # Two-hop templates and path queries use the 2-hop circle table.
        return pc_table_two_hop(self.stats)

    def curated_persons(self, query_id: int, k: int) -> list[int]:
        """Curated person ids for one query template."""
        return greedy_select(self.table_for(query_id), k).values

    def uniform_persons(self, query_id: int, k: int) -> list[int]:
        """Uniform-baseline person ids (the Fig. 5 contrast)."""
        return uniform_select(self.table_for(query_id), k, self.seed)

    # -- secondary parameter helpers -----------------------------------------

    def _stable_timestamps(self, k: int) -> list[int]:
        """Timestamps from near-median-activity month buckets."""
        counts = bucket_timestamps(self._message_timestamps)
        buckets = stable_buckets(counts, max(k // 4, 1))
        if not buckets:
            raise CurationError("network has no messages to bucket")
        return [bucket_midpoint(buckets[i % len(buckets)])
                for i in range(k)]

    def _common_first_names(self, k: int) -> list[str]:
        counter = Counter(p.first_name for p in self.network.persons)
        common = [name for name, __ in counter.most_common(max(k, 5))]
        return [common[i % len(common)] for i in range(k)]

    def _popular_tags(self, k: int) -> list[int]:
        ranked = sorted(self.stats.tag_message_count.items(),
                        key=lambda kv: (-kv[1], kv[0]))
        if not ranked:
            raise CurationError("network has no tagged messages")
        # Skip the very head: the most popular tag has outlier frequency.
        pool = [tag for tag, __ in ranked[1:1 + max(k, 5)]] \
            or [ranked[0][0]]
        return [pool[i % len(pool)] for i in range(k)]

    def _mid_countries(self, k: int) -> list[int]:
        ordered = sorted(self._countries, key=lambda c: c.name)
        middle = ordered[len(ordered) // 4: len(ordered) * 3 // 4] \
            or ordered
        return [middle[i % len(middle)].id for i in range(k)]

    def _tag_classes_with_tags(self, k: int) -> list[int]:
        populated = sorted({tag.class_id for tag in self.network.tags})
        if not populated:
            raise CurationError("network has no tag classes")
        return [populated[i % len(populated)] for i in range(k)]

    def _person_pairs(self, k: int) -> list[tuple[int, int]]:
        """Pairs for the path queries: curated persons from distinct
        regions of the PC table, so path lengths are non-trivial."""
        table = self.table_for(13)
        persons = greedy_select(table, max(2 * k, 4)).values
        stream = RandomStream.for_key(self.seed, "pairs")
        others = [value for value, __ in table.rows]
        pairs = []
        for i in range(k):
            a = persons[i % len(persons)]
            b = others[stream.zipf_index(len(others), 1.0)]
            if a == b:
                b = others[(others.index(b) + 1) % len(others)]
            pairs.append((a, b))
        return pairs

    # -- the main entry point -------------------------------------------------

    def curate(self, bindings_per_query: int = 10,
               uniform: bool = False) -> CuratedWorkloadParams:
        """Curated (or uniform-baseline) bindings for all 14 templates."""
        k = bindings_per_query
        pick = self.uniform_persons if uniform else self.curated_persons
        dates = self._stable_timestamps(k)
        names = self._common_first_names(k)
        tags = self._popular_tags(k)
        countries = self._mid_countries(2 * k)
        classes = self._tag_classes_with_tags(k)
        pairs = self._person_pairs(k)
        result = CuratedWorkloadParams()
        result.by_query[1] = [
            q1.Q1Params(p, names[i])
            for i, p in enumerate(pick(1, k))]
        result.by_query[2] = [
            q2.Q2Params(p, dates[i]) for i, p in enumerate(pick(2, k))]
        result.by_query[3] = [
            q3.Q3Params(p, countries[2 * i], countries[2 * i + 1],
                        dates[i], 60)
            for i, p in enumerate(pick(3, k))]
        result.by_query[4] = [
            q4.Q4Params(p, dates[i], 30) for i, p in enumerate(pick(4, k))]
        result.by_query[5] = [
            q5.Q5Params(p, dates[i]) for i, p in enumerate(pick(5, k))]
        result.by_query[6] = [
            q6.Q6Params(p, tags[i]) for i, p in enumerate(pick(6, k))]
        result.by_query[7] = [
            q7.Q7Params(p) for p in pick(7, k)]
        result.by_query[8] = [
            q8.Q8Params(p) for p in pick(8, k)]
        result.by_query[9] = [
            q9.Q9Params(p, dates[i]) for i, p in enumerate(pick(9, k))]
        result.by_query[10] = [
            q10.Q10Params(p, 1 + i % 12)
            for i, p in enumerate(pick(10, k))]
        result.by_query[11] = [
            q11.Q11Params(p, countries[i], 2013)
            for i, p in enumerate(pick(11, k))]
        result.by_query[12] = [
            q12.Q12Params(p, classes[i])
            for i, p in enumerate(pick(12, k))]
        result.by_query[13] = [
            q13.Q13Params(a, b) for a, b in pairs]
        result.by_query[14] = [
            q14.Q14Params(a, b) for a, b in pairs]
        return result
