"""Greedy minimal-variance window selection (paper §4.1 step 2).

"Once the intermediate results for the query template are computed, our
Parameter Curation problem boils down to finding similar rows (i.e., with
the smallest variance across all columns) in the Parameter-Count table.
Here we rely on a greedy heuristics that forms windows of rows with the
smallest variance":

1. sort rows by the first column and find the contiguous window with the
   minimum variance in that column;
2. inside that window, sort by the second column and find the sub-window
   with minimum variance there;
3. repeat for the remaining columns; at the last column, keep the ``k``
   rows closest to the window median.

If the best window cannot supply ``k`` rows, subsequent windows (ranked by
variance) contribute too — "across the entire Parameter-Count table".
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import CurationError
from .pc_table import ParameterCountTable

Row = tuple[int, tuple[int, ...]]


@dataclass
class GreedySelection:
    """Outcome of a curation run."""

    values: list[int]
    #: Variance of each PC column over the selected rows.
    variances: tuple[float, ...]
    #: Windows inspected on the first column (for the Fig. 6 trace bench).
    window_trace: list[tuple[int, int, float]]


def _window_variance(rows: list[Row], column: int, start: int,
                     size: int) -> float:
    values = [rows[i][1][column] for i in range(start, start + size)]
    mean = sum(values) / size
    return sum((v - mean) ** 2 for v in values) / size


def _best_windows(rows: list[Row], column: int, size: int,
                  ) -> list[tuple[int, float]]:
    """All window start offsets ranked by variance on ``column``."""
    if size >= len(rows):
        return [(0, _window_variance(rows, column, 0, len(rows)))]
    scored = [(start, _window_variance(rows, column, start, size))
              for start in range(0, len(rows) - size + 1)]
    scored.sort(key=lambda pair: (pair[1], pair[0]))
    return scored


def _refine(rows: list[Row], column: int, num_columns: int,
            k: int) -> list[Row]:
    """Recursively refine a window on the remaining columns."""
    rows = sorted(rows, key=lambda row: (row[1][column], row[0]))
    if column == num_columns - 1:
        # Last column: keep the k rows closest to the median value.
        median = rows[len(rows) // 2][1][column]
        rows.sort(key=lambda row: (abs(row[1][column] - median), row[0]))
        return rows[:k]
    size = min(len(rows), max(k * 2, k + 1))
    starts = _best_windows(rows, column, size)
    best_start = starts[0][0]
    window = rows[best_start:best_start + size]
    return _refine(window, column + 1, num_columns, k)


def greedy_select(table: ParameterCountTable, k: int,
                  window_factor: int = 4) -> GreedySelection:
    """Select ``k`` parameter values with minimal C_out variance."""
    if k <= 0:
        raise CurationError("k must be positive")
    rows = table.sorted_by_column(0)
    if len(rows) <= k:
        values = [value for value, __ in rows]
        variances = tuple(table.column_variance(c, rows)
                          for c in range(table.num_columns))
        return GreedySelection(values, variances, [])

    size = min(len(rows), max(k * window_factor, k + 1))
    ranked = _best_windows(rows, 0, size)
    trace = [(start, size, variance) for start, variance in ranked[:10]]

    selected: list[Row] = []
    seen: set[int] = set()
    for start, __ in ranked:
        window = rows[start:start + size]
        refined = _refine(window, 1, table.num_columns, k - len(selected)) \
            if table.num_columns > 1 else window[:k - len(selected)]
        for row in refined:
            if row[0] not in seen:
                seen.add(row[0])
                selected.append(row)
        if len(selected) >= k:
            break
    selected = selected[:k]
    variances = tuple(table.column_variance(c, selected)
                      for c in range(table.num_columns))
    return GreedySelection([value for value, __ in selected], variances,
                           trace)


def uniform_select(table: ParameterCountTable, k: int,
                   seed: int = 0) -> list[int]:
    """Baseline: uniform random sample of the parameter domain.

    This is the conventional TPC-H/BSBM approach the paper contrasts
    curation against (Fig. 5b's high-variance runtimes).
    """
    from ..rng import RandomStream

    values = [value for value, __ in table.rows]
    stream = RandomStream.for_key(seed, "uniform-params")
    if k >= len(values):
        return values
    return stream.sample(values, k)
