"""Continuous-parameter bucketing (paper §4.1 step 1, last paragraph).

"While it is feasible for discrete parameters with reasonably small
domains (like PersonID ...), it becomes too expensive for continuous
parameters.  In that case, we introduce buckets of parameters (for
example, group Timestamp parameter into buckets of one month length)."
"""

from __future__ import annotations

from ..sim_time import MILLIS_PER_MONTH


def bucket_key(timestamp: int, bucket_millis: int = MILLIS_PER_MONTH,
               origin: int = 0) -> int:
    """The bucket index a timestamp falls into."""
    return (timestamp - origin) // bucket_millis


def bucket_timestamps(timestamps: list[int],
                      bucket_millis: int = MILLIS_PER_MONTH,
                      origin: int = 0) -> dict[int, int]:
    """Bucket index → count of timestamps in the bucket."""
    counts: dict[int, int] = {}
    for ts in timestamps:
        key = bucket_key(ts, bucket_millis, origin)
        counts[key] = counts.get(key, 0) + 1
    return dict(sorted(counts.items()))


def bucket_midpoint(bucket: int, bucket_millis: int = MILLIS_PER_MONTH,
                    origin: int = 0) -> int:
    """A representative timestamp (midpoint) for a bucket."""
    return origin + bucket * bucket_millis + bucket_millis // 2


def stable_buckets(counts: dict[int, int], k: int) -> list[int]:
    """The ``k`` buckets whose counts are closest to the median count.

    This is the bucket-level analog of the greedy row selection: choosing
    timestamps from buckets with near-median activity keeps the date-range
    selectivity of a query template stable across bindings.
    """
    if not counts:
        return []
    ordered = sorted(counts.items())
    values = sorted(count for __, count in ordered)
    median = values[len(values) // 2]
    ranked = sorted(ordered, key=lambda kv: (abs(kv[1] - median), kv[0]))
    return [bucket for bucket, __ in ranked[:k]]
