"""Parameter-Count tables (paper Fig. 6b).

A PC table has one row per candidate parameter value and one column per
intermediate result of the intended query plan: for Q2, ``|⋈1|`` is the
number of friends of the person and ``|⋈2|`` the number of messages those
friends created.  The paper points out two ways of obtaining it — group-by
queries around each subplan, or keeping counts as a by-product of data
generation.  Like SNB-Interactive, we use the by-product strategy: the
columns come from :class:`~repro.datagen.stats.FrequencyStatistics`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..datagen.stats import FrequencyStatistics
from ..errors import CurationError


@dataclass
class ParameterCountTable:
    """Rows of ``(parameter value, intermediate result counts...)``."""

    column_names: tuple[str, ...]
    rows: list[tuple[int, tuple[int, ...]]] = field(default_factory=list)

    def __post_init__(self) -> None:
        for value, counts in self.rows:
            if len(counts) != len(self.column_names):
                raise CurationError(
                    f"row {value} has {len(counts)} counts, expected "
                    f"{len(self.column_names)}")

    @property
    def num_columns(self) -> int:
        return len(self.column_names)

    def sorted_by_column(self, column: int,
                         ) -> list[tuple[int, tuple[int, ...]]]:
        """Rows ordered by one column (ties by parameter value)."""
        return sorted(self.rows,
                      key=lambda row: (row[1][column], row[0]))

    def column_variance(self, column: int,
                        subset: list[tuple[int, tuple[int, ...]]]
                        | None = None) -> float:
        """Population variance of one column (over a subset if given)."""
        rows = self.rows if subset is None else subset
        if not rows:
            return 0.0
        values = [counts[column] for __, counts in rows]
        mean = sum(values) / len(values)
        return sum((v - mean) ** 2 for v in values) / len(values)

    def total_cout(self, value: int) -> int:
        """Total intermediate results for one parameter value."""
        for row_value, counts in self.rows:
            if row_value == value:
                return sum(counts)
        raise CurationError(f"parameter {value} not in PC table")


def pc_table_q2(stats: FrequencyStatistics) -> ParameterCountTable:
    """Fig. 6's example: Q2's PC table over PersonID.

    Column ``|join1|`` = friends per person, ``|join2|`` = messages
    created by those friends.
    """
    rows = [(person_id, (stats.friend_count[person_id],
                         stats.friend_message_count[person_id]))
            for person_id in stats.friend_count]
    return ParameterCountTable(("|join1| friends", "|join2| messages"),
                               rows)


def pc_table_two_hop(stats: FrequencyStatistics) -> ParameterCountTable:
    """PC table for 2-hop queries (Q5, Q9, ...): circle size, then the
    messages created inside the circle."""
    rows = [(person_id, (stats.friend_count[person_id],
                         stats.two_hop_count[person_id],
                         stats.two_hop_message_count[person_id]))
            for person_id in stats.friend_count]
    return ParameterCountTable(
        ("|join1| friends", "|join2| two-hop", "|join3| messages"), rows)


def pc_table_own_messages(stats: FrequencyStatistics,
                          ) -> ParameterCountTable:
    """PC table for queries over a person's own content (Q7, Q8)."""
    rows = [(person_id, (stats.message_count.get(person_id, 0),))
            for person_id in stats.friend_count]
    return ParameterCountTable(("|join1| own messages",), rows)


def log_spread(table: ParameterCountTable, values: list[int],
               column: int = -1) -> float:
    """``log10(max/min)`` of the (last) column over selected values.

    The paper quantifies the uniform-sampling problem as "more than 100
    times difference between the smallest and the largest runtime"; this
    helper measures that spread for a selection (0 → perfectly equal).
    """
    if column < 0:
        column = table.num_columns - 1
    by_value = {value: counts for value, counts in table.rows}
    counts = [max(by_value[v][column], 1) for v in values]
    if not counts:
        return 0.0
    return math.log10(max(counts) / min(counts))
