"""The versioned, length-prefixed JSON wire codec.

One frame = a 4-byte big-endian length prefix followed by that many
bytes of UTF-8 JSON.  Every message embeds the protocol version
(``"v": 1``); a reader that sees any other version rejects the message
without guessing at its shape.

Values inside a message (operation parameters, update payloads, query
results) are encoded over an explicit **type registry**: every
dataclass and enum that may legally cross the wire — the typed
operation union, the 14 complex-read parameter/result classes, the 7
short-read results, the schema entities carried by update payloads —
is registered by class name at import time.  Decoding reconstructs the
*exact* dataclass, so structural consumers (the short-read random
walk's attribute probing, the validation canonicalizer, the state
snapshotters) behave identically on both sides of the wire.  Types
outside the registry are refused at encode time, and unknown tags are
refused at decode time: the registry is an allowlist, never an
``eval``.

Encoded value forms::

    null / bool / number / string      as themselves
    list                               as a JSON array
    tuple                              {"__k": "tuple", "v": [...]}
    dict                               {"__k": "map",   "v": [[k, v], ...]}
    EntityRef                          {"__k": "ref",   "v": [kind, id]}
    Enum member                        {"__k": "enum",  "t": name, "v": member}
    dataclass                          {"__k": "dc",    "t": name, "v": {...}}
"""

from __future__ import annotations

import dataclasses
import enum
import json
import struct

from ..errors import ReproError
from ..workload.operations import EntityRef

#: Version stamped into (and required of) every message envelope.
PROTOCOL_VERSION = 1

#: Hard upper bound on one frame; a length prefix beyond this is treated
#: as a corrupt or hostile stream, not a large message.
MAX_FRAME_BYTES = 16 * 1024 * 1024

_HEADER = struct.Struct(">I")


class CodecError(ReproError):
    """The wire codec could not encode or decode a message."""


class UnsupportedVersionError(CodecError):
    """The message's protocol version is not one this codec speaks."""


class TruncatedFrameError(CodecError):
    """The byte stream ended in the middle of a frame."""


class FrameTooLargeError(CodecError):
    """A frame's length prefix exceeds :data:`MAX_FRAME_BYTES`."""


# ---------------------------------------------------------------------------
# type registry
# ---------------------------------------------------------------------------

_REGISTRY: dict[str, type] = {}


def register(cls: type) -> type:
    """Allowlist one dataclass or enum for wire transport."""
    name = cls.__name__
    existing = _REGISTRY.get(name)
    if existing is not None and existing is not cls:
        raise CodecError(
            f"wire-type name collision: {name} is both "
            f"{existing.__module__} and {cls.__module__}")
    _REGISTRY[name] = cls
    return cls


def registered_types() -> dict[str, type]:
    """A copy of the registry (tests assert coverage against this)."""
    return dict(_REGISTRY)


def _register_module(module) -> None:
    """Register every dataclass and enum *defined in* a module."""
    for value in vars(module).values():
        if not isinstance(value, type) \
                or value.__module__ != module.__name__:
            continue
        if dataclasses.is_dataclass(value) \
                or issubclass(value, enum.Enum):
            register(value)


def _populate_registry() -> None:
    from ..core import operation as core_operation
    from ..datagen import update_stream
    from ..queries import short_reads
    from ..queries.complex_reads import (
        q1, q2, q3, q4, q5, q6, q7, q8, q9, q10, q11, q12, q13, q14,
    )
    from ..schema import dataset, entities
    from ..workload import operations as workload_operations

    # dataset closes the registry under field types: SplitDataset (in
    # update_stream) embeds a SocialNetwork.
    for module in (core_operation, update_stream, short_reads,
                   q1, q2, q3, q4, q5, q6, q7, q8, q9, q10, q11, q12,
                   q13, q14, dataset, entities, workload_operations):
        _register_module(module)


_populate_registry()


# ---------------------------------------------------------------------------
# value encoding
# ---------------------------------------------------------------------------

def encode_value(value):
    """Encode any registered value into its JSON-able wire form."""
    # Enums first: str/int-mixin members would otherwise slip through
    # the primitive passthrough and decode as bare strings/numbers.
    if isinstance(value, enum.Enum):
        cls = type(value)
        if _REGISTRY.get(cls.__name__) is not cls:
            raise CodecError(f"unregistered enum type {cls.__name__}")
        return {"__k": "enum", "t": cls.__name__, "v": value.name}
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, EntityRef):
        return {"__k": "ref", "v": value.as_json()}
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        cls = type(value)
        if _REGISTRY.get(cls.__name__) is not cls:
            raise CodecError(
                f"unregistered dataclass type {cls.__name__}")
        fields = {f.name: encode_value(getattr(value, f.name))
                  for f in dataclasses.fields(value)}
        return {"__k": "dc", "t": cls.__name__, "v": fields}
    if isinstance(value, tuple):
        return {"__k": "tuple", "v": [encode_value(v) for v in value]}
    if isinstance(value, list):
        return [encode_value(v) for v in value]
    if isinstance(value, dict):
        return {"__k": "map",
                "v": [[encode_value(k), encode_value(v)]
                      for k, v in value.items()]}
    raise CodecError(
        f"value of type {type(value).__name__} cannot cross the wire")


def decode_value(value):
    """Decode a wire form back into the exact original value."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, list):
        return [decode_value(v) for v in value]
    if isinstance(value, dict):
        kind = value.get("__k")
        if kind == "tuple":
            return tuple(decode_value(v) for v in value["v"])
        if kind == "map":
            return {decode_value(k): decode_value(v)
                    for k, v in value["v"]}
        if kind == "ref":
            return EntityRef.of(value["v"])
        if kind == "enum":
            cls = _REGISTRY.get(value.get("t", ""))
            if cls is None or not issubclass(cls, enum.Enum):
                raise CodecError(
                    f"unknown wire enum type {value.get('t')!r}")
            try:
                return cls[value["v"]]
            except KeyError:
                raise CodecError(
                    f"unknown {cls.__name__} member {value['v']!r}")
        if kind == "dc":
            cls = _REGISTRY.get(value.get("t", ""))
            if cls is None or not dataclasses.is_dataclass(cls):
                raise CodecError(
                    f"unknown wire dataclass type {value.get('t')!r}")
            fields = {name: decode_value(v)
                      for name, v in value["v"].items()}
            try:
                return cls(**fields)
            except TypeError as exc:
                raise CodecError(
                    f"bad field set for {cls.__name__}: {exc}")
        raise CodecError(f"unknown wire value tag {kind!r}")
    raise CodecError(
        f"un-decodable wire value of type {type(value).__name__}")


# ---------------------------------------------------------------------------
# operations and results
# ---------------------------------------------------------------------------

def encode_operation(operation) -> dict:
    """Canonical wire form of one operation (any legacy shape)."""
    from ..core.operation import as_operation

    return encode_value(as_operation(operation))


def decode_operation(encoded):
    """Decode a wire operation; reject anything outside the union."""
    from ..core.operation import ComplexRead, ShortRead, Update

    op = decode_value(encoded)
    if not isinstance(op, (ComplexRead, ShortRead, Update)):
        raise CodecError(
            f"decoded message is not an operation: {type(op).__name__}")
    return op


def encode_result(result) -> dict:
    """Canonical wire form of one :class:`OperationResult`."""
    from ..core.operation import OperationResult

    if not isinstance(result, OperationResult):
        raise CodecError(
            f"not an OperationResult: {type(result).__name__}")
    return encode_value(result)


def decode_result(encoded):
    """Decode a wire result; reject anything else."""
    from ..core.operation import OperationResult

    result = decode_value(encoded)
    if not isinstance(result, OperationResult):
        raise CodecError(
            f"decoded message is not a result: {type(result).__name__}")
    return result


# ---------------------------------------------------------------------------
# framing
# ---------------------------------------------------------------------------

def encode_frame(message: dict) -> bytes:
    """One length-prefixed frame around a version-stamped message."""
    if "v" not in message:
        message = {"v": PROTOCOL_VERSION, **message}
    body = json.dumps(message, separators=(",", ":"),
                      ensure_ascii=False).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise FrameTooLargeError(
            f"frame of {len(body)} bytes exceeds {MAX_FRAME_BYTES}")
    return _HEADER.pack(len(body)) + body


def check_version(message) -> dict:
    """Validate the envelope: a dict stamped with a known version."""
    if not isinstance(message, dict):
        raise CodecError("message envelope is not an object")
    version = message.get("v")
    if version != PROTOCOL_VERSION:
        raise UnsupportedVersionError(
            f"unsupported protocol version {version!r} "
            f"(this codec speaks {PROTOCOL_VERSION})")
    return message


def _parse_body(body: bytes) -> dict:
    try:
        message = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise CodecError(f"undecodable frame body: {exc}")
    return check_version(message)


class FrameReader:
    """Incremental frame decoder (feed bytes, pop messages).

    Used by tests and any non-blocking transport; the blocking socket
    path uses :func:`recv_message` directly.  :meth:`close` raises
    :class:`TruncatedFrameError` when the stream ended mid-frame.
    """

    def __init__(self) -> None:
        self._buffer = bytearray()

    def feed(self, data: bytes) -> None:
        self._buffer.extend(data)

    def next(self) -> dict | None:
        """The next complete message, or None if more bytes are needed."""
        if len(self._buffer) < _HEADER.size:
            return None
        (length,) = _HEADER.unpack_from(self._buffer)
        if length > MAX_FRAME_BYTES:
            raise FrameTooLargeError(
                f"frame length prefix {length} exceeds {MAX_FRAME_BYTES}")
        end = _HEADER.size + length
        if len(self._buffer) < end:
            return None
        body = bytes(self._buffer[_HEADER.size:end])
        del self._buffer[:end]
        return _parse_body(body)

    def close(self) -> None:
        """Declare end-of-stream; a partial frame is an error."""
        if self._buffer:
            raise TruncatedFrameError(
                f"stream ended with {len(self._buffer)} bytes of an "
                f"incomplete frame")


def _recv_exact(sock, count: int, *, at_boundary: bool) -> bytes | None:
    """Read exactly ``count`` bytes; None on clean EOF at a boundary."""
    chunks = []
    remaining = count
    while remaining > 0:
        chunk = sock.recv(remaining)
        if not chunk:
            if at_boundary and remaining == count:
                return None
            raise TruncatedFrameError(
                f"stream ended {remaining} bytes short of a "
                f"{count}-byte read")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_message(sock) -> dict | None:
    """Read one framed message off a blocking socket (None on EOF)."""
    header = _recv_exact(sock, _HEADER.size, at_boundary=True)
    if header is None:
        return None
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise FrameTooLargeError(
            f"frame length prefix {length} exceeds {MAX_FRAME_BYTES}")
    body = _recv_exact(sock, length, at_boundary=False)
    return _parse_body(body)


def send_message(sock, message: dict) -> None:
    """Frame and write one message to a blocking socket."""
    sock.sendall(encode_frame(message))
