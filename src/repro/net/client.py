"""The remote connector: the wire-protocol client side.

:class:`RemoteConnector` implements the same contract as the
in-process SUTs — ``execute(op) -> OperationResult`` — plus the
connector protocol's ``close()`` and capability flags, so every layer
above it is oblivious to the network: the scheduler drives it like any
connector, :class:`~repro.core.connector.InteractiveConnector` wraps it
like any SUT (running the short-read walk over the wire), and the
fault injector composes in front of it, turning chaos drops/delays
into wire-level perturbations.

Failure mapping onto the existing error taxonomy:

* a request that outlives its timeout → :class:`OperationTimeoutError`
  (transient — the retry policy replays it; the server's op-key dedup
  guarantees the abandoned attempt cannot double-apply);
* connection refused / reset mid-request → ``ConnectionError``
  (transient by :func:`~repro.driver.resilience.default_is_transient`);
* a server-side :class:`~repro.errors.TransientError` →
  :class:`RemoteTransientError`;
* a server-side fatal (or unclassified) failure →
  :class:`RemoteFatalError` (never retried);
* backpressure (queue full) → :class:`ServerBusyError` (transient,
  carries the server's ``retry_after`` hint);
* admission-control refusal → :class:`AdmissionRejectedError` (fatal:
  retrying an over-cost traversal cannot make it admissible).

Each pooled connection pipelines: a background reader demultiplexes
responses by request id, so any number of threads (and
:meth:`RemoteConnector.execute_batch`) can have requests in flight on
one socket.
"""

from __future__ import annotations

import itertools
import os
import socket
import threading
import time

from ..driver.resilience import raise_if_abandoned
from ..errors import (
    FatalSUTError,
    OperationTimeoutError,
    TransientError,
)
from . import codec


class RemoteTransientError(TransientError):
    """The server reported a transient failure (retry should absorb)."""


class RemoteFatalError(FatalSUTError):
    """The server reported a fatal SUT failure (never retried)."""


class RemoteProtocolError(FatalSUTError):
    """The server and client no longer agree on the protocol."""


class ServerBusyError(TransientError):
    """Backpressure: the server's request queue was full."""

    def __init__(self, message: str, retry_after: float | None) -> None:
        super().__init__(message)
        self.retry_after = retry_after


class AdmissionRejectedError(FatalSUTError):
    """Admission control refused the operation pre-execution.

    Classified fatal not because the SUT is broken but because the
    refusal is deterministic policy: the same query costs the same
    rows on every retry.
    """


class _Pending:
    """One in-flight request awaiting its response."""

    __slots__ = ("event", "response", "abandoned")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.response: dict | None = None
        self.abandoned = False


class _PooledConnection:
    """One socket with a demultiplexing reader thread."""

    def __init__(self, host: str, port: int,
                 connect_timeout: float) -> None:
        self.sock = _connect_with_retry(host, port, connect_timeout)
        self.sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self.send_lock = threading.Lock()
        self.pending_lock = threading.Lock()
        self.pending: dict[int, _Pending] = {}
        self.in_flight = 0
        self.dead: BaseException | None = None
        self._ids = itertools.count(1)
        self.reader = threading.Thread(target=self._reader_main,
                                       name="repro-net-reader",
                                       daemon=True)
        self.reader.start()

    # -- request plumbing --------------------------------------------------

    def post(self, message: dict) -> tuple[int, _Pending]:
        """Register a pending slot and write one framed request."""
        pending = _Pending()
        with self.pending_lock:
            if self.dead is not None:
                raise ConnectionError(
                    f"connection lost: {self.dead}") from self.dead
            request_id = next(self._ids)
            message = dict(message)
            message["id"] = request_id
            self.pending[request_id] = pending
            self.in_flight += 1
        try:
            with self.send_lock:
                codec.send_message(self.sock, message)
        except OSError as exc:
            self._discard(request_id)
            raise ConnectionError(f"send failed: {exc}") from exc
        return request_id, pending

    def wait(self, request_id: int, pending: _Pending,
             timeout: float | None) -> dict:
        """Block for the response; abandon the slot on timeout."""
        if not pending.event.wait(timeout):
            with self.pending_lock:
                pending.abandoned = True
                # The reader may have popped the entry between the
                # wait timing out and this lock; only the popper
                # decrements, or in_flight goes negative and skews
                # least-loaded pool selection forever.
                if self.pending.pop(request_id, None) is not None:
                    self.in_flight -= 1
            raise OperationTimeoutError(
                f"no response within {timeout:.3f}s "
                f"(request {request_id})")
        if pending.response is None:
            cause = self.dead
            raise ConnectionError(
                f"connection lost awaiting request {request_id}: "
                f"{cause}") from cause
        return pending.response

    def _discard(self, request_id: int) -> None:
        with self.pending_lock:
            if self.pending.pop(request_id, None) is not None:
                self.in_flight -= 1

    def _reader_main(self) -> None:
        while True:
            try:
                message = codec.recv_message(self.sock)
            except (codec.CodecError, OSError) as exc:
                self._fail_all(exc)
                return
            if message is None:
                self._fail_all(ConnectionError("server closed the "
                                               "connection"))
                return
            request_id = message.get("id")
            with self.pending_lock:
                pending = self.pending.pop(request_id, None)
                if pending is not None:
                    self.in_flight -= 1
            if pending is not None and not pending.abandoned:
                pending.response = message
                pending.event.set()
            # Responses to abandoned (timed-out) requests are dropped:
            # the retry holds a fresh request id.

    def _fail_all(self, exc: BaseException) -> None:
        with self.pending_lock:
            self.dead = exc
            pending, self.pending = dict(self.pending), {}
            self.in_flight = 0
        for slot in pending.values():
            slot.event.set()  # response stays None → ConnectionError
        try:
            # shutdown() first so the reader thread's blocked recv()
            # returns immediately and the peer sees the FIN now.
            self.sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass  # already disconnected
        try:
            self.sock.close()
        except OSError:  # pragma: no cover
            pass

    def close(self) -> None:
        self._fail_all(ConnectionError("connection closed"))


def _connect_with_retry(host: str, port: int,
                        timeout: float) -> socket.socket:
    """Dial with brief retries (CI races `serve` startup)."""
    deadline = time.monotonic() + timeout
    delay = 0.05
    while True:
        try:
            return socket.create_connection((host, port), timeout)
        except OSError:
            if time.monotonic() + delay >= deadline:
                raise
            time.sleep(delay)
            delay = min(0.5, delay * 2)


class RemoteConnector:
    """Connector/SUT hybrid executing operations over the wire."""

    #: Connector capability flags (core.connector.ConnectorProtocol).
    supports_reads = True
    is_remote = True

    def __init__(self, host: str, port: int, *,
                 pool_size: int = 2,
                 timeout: float | None = 30.0,
                 connect_timeout: float = 10.0,
                 client_id: str | None = None) -> None:
        self.host = host
        self.port = port
        self.pool_size = max(1, pool_size)
        #: Per-request response budget (seconds); None waits forever.
        self.timeout = timeout
        self.connect_timeout = connect_timeout
        #: Prefix making op_keys unique across driver processes that
        #: may talk to one long-lived server.
        self.client_id = client_id or f"c{os.getpid()}-{id(self):x}"
        self._pool: list[_PooledConnection] = []
        self._pool_lock = threading.Lock()
        self._sut_name: str | None = None
        self._op_key_lock = threading.Lock()
        self._op_key_seq = itertools.count(1)
        #: id(item) → (item, key).  Holding the item reference pins it,
        #: so CPython can never recycle its id for a different stream
        #: item while the key is live — id() alone would alias two
        #: distinct updates under a lazily-consumed stream.
        self._op_keys: dict[int, tuple[object, str]] = {}

    @classmethod
    def parse(cls, address: str, **kwargs) -> "RemoteConnector":
        """Build from a ``host:port`` string (the ``--remote`` flag)."""
        host, _, port = address.rpartition(":")
        if not host or not port.isdigit():
            raise ValueError(
                f"--remote expects host:port, got {address!r}")
        return cls(host, int(port), **kwargs)

    # -- identity ----------------------------------------------------------

    @property
    def name(self) -> str:
        """SUT-style name (fetched from the server on first use)."""
        if self._sut_name is None:
            try:
                info = self.ping()
                self._sut_name = (f"remote({info.get('sut', '?')}"
                                  f"@{self.host}:{self.port})")
            except Exception:
                return f"remote({self.host}:{self.port})"
        return self._sut_name

    # -- connection pool ---------------------------------------------------

    def _acquire(self) -> _PooledConnection:
        with self._pool_lock:
            self._pool = [c for c in self._pool if c.dead is None]
            if len(self._pool) < self.pool_size:
                connection = _PooledConnection(self.host, self.port,
                                               self.connect_timeout)
                self._pool.append(connection)
                return connection
            # Least-loaded: spreads pipelining across the pool.
            return min(self._pool, key=lambda c: c.in_flight)

    def close(self) -> None:
        with self._pool_lock:
            pool, self._pool = self._pool, []
        for connection in pool:
            connection.close()

    # -- the connector protocol --------------------------------------------

    def execute(self, operation):
        """Run one operation remotely; returns its OperationResult."""
        # An attempt the watchdog already abandoned must not reach the
        # wire at all — the retry owns the operation now.
        raise_if_abandoned()
        request = self._execute_request(operation)
        response = self._round_trip(request)
        return codec.decode_result(response["result"])

    def _execute_request(self, operation) -> dict:
        from ..core.operation import Update, as_operation

        op = as_operation(operation)
        request = {"v": codec.PROTOCOL_VERSION, "kind": "execute",
                   "op": codec.encode_operation(op)}
        if isinstance(op, Update):
            # Keyed on the *inner* stream item, which is the same
            # object across retries (wrappers like as_operation build
            # a fresh Update each attempt).  The server's dedup table
            # then recognizes a replay of a request whose first
            # attempt timed out on the wire but executed anyway.
            request["op_key"] = self._stable_op_key(op.operation)
        return request

    def _stable_op_key(self, item) -> str:
        """One stable token per stream item (same item → same key)."""
        with self._op_key_lock:
            entry = self._op_keys.get(id(item))
            if entry is None or entry[0] is not item:
                entry = (item,
                         f"{self.client_id}:u{next(self._op_key_seq)}")
                self._op_keys[id(item)] = entry
            return entry[1]

    def execute_batch(self, operations) -> list:
        """Pipeline a batch on one connection; results in order.

        All requests are written before any response is awaited — the
        wire-level batching the server's per-connection pipelining is
        built for.  The first failed operation raises after the whole
        batch has drained.
        """
        raise_if_abandoned()
        connection = self._acquire()
        posted = []
        for operation in operations:
            posted.append(connection.post(
                self._execute_request(operation)))
        results = []
        failure: BaseException | None = None
        for request_id, pending in posted:
            try:
                response = connection.wait(request_id, pending,
                                           self.timeout)
                results.append(
                    codec.decode_result(
                        self._checked(response)["result"]))
            except BaseException as exc:
                if failure is None:
                    failure = exc
                results.append(None)
        if failure is not None:
            raise failure
        return results

    # -- admin -------------------------------------------------------------

    def ping(self) -> dict:
        return self._admin("ping")

    def server_stats(self) -> dict:
        return self._admin("stats")

    def digest(self) -> str:
        """The server-side SUT's final-state digest."""
        return self._admin("digest")["digest"]

    def _admin(self, action: str) -> dict:
        response = self._round_trip(
            {"v": codec.PROTOCOL_VERSION, "kind": "admin",
             "action": action})
        return response["value"]

    # -- plumbing ----------------------------------------------------------

    def _round_trip(self, request: dict) -> dict:
        connection = self._acquire()
        request_id, pending = connection.post(request)
        response = connection.wait(request_id, pending, self.timeout)
        return self._checked(response)

    @staticmethod
    def _checked(response: dict) -> dict:
        kind = response.get("kind")
        if kind in ("result", "admin-result"):
            return response
        if kind == "error":
            error = response.get("error")
            message = response.get("message", "")
            if error == "busy":
                raise ServerBusyError(message,
                                      response.get("retry_after"))
            if error == "rejected":
                raise AdmissionRejectedError(message)
            if error == "transient":
                raise RemoteTransientError(message)
            raise RemoteFatalError(message)
        raise RemoteProtocolError(
            f"unexpected response kind {kind!r}")
