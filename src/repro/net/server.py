"""The threaded socket server fronting any system under test.

One :class:`ReproServer` wraps one SUT (anything implementing the
unified ``execute(op) -> OperationResult`` API) and speaks the
:mod:`repro.net.codec` wire protocol:

* **pipelining** — each connection has a dedicated reader thread; a
  client may have any number of requests in flight, and responses are
  matched by request id (they may return out of order);
* **bounded worker pool** — requests are executed by ``workers``
  threads off one bounded queue; execution order across connections is
  whatever the pool dequeues;
* **backpressure** — when the queue is full the request is rejected
  *immediately* with a ``busy`` error carrying ``retry_after`` seconds,
  instead of stalling the reader (a wedged accept loop is how real
  benchmark SUTs melt down);
* **admission control** — complex reads whose estimated traversal
  cardinality exceeds the configured ceiling are refused pre-execution
  (:mod:`repro.net.admission`);
* **exactly-once updates** — requests may carry an ``op_key`` token;
  the server remembers each token's outcome and replays it instead of
  re-executing, so a client retry after a wire-level timeout can never
  double-apply an update whose first attempt actually ran.  Only
  results and fatal errors are remembered: a transient failure means
  the update never applied, so the token is released and the retry
  re-executes.
"""

from __future__ import annotations

import queue
import socket
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass

from .. import telemetry
from ..errors import FatalSUTError, TransientError
from . import codec
from .admission import AdmissionController

#: Telemetry counter names (registered only when telemetry is active).
REQUESTS_COUNTER = "net.server.requests"
BUSY_COUNTER = "net.server.rejected_busy"
ADMISSION_COUNTER = "net.server.rejected_admission"
DEDUP_COUNTER = "net.server.deduped"


@dataclass
class ServerConfig:
    """Knobs of one server instance."""

    host: str = "127.0.0.1"
    #: 0 lets the OS pick an ephemeral port (tests); :meth:`start`
    #: returns the bound address either way.
    port: int = 0
    #: Worker threads executing operations off the shared queue.
    workers: int = 4
    #: Bounded request queue; a full queue triggers busy rejections.
    queue_size: int = 64
    #: Retry hint (seconds) sent with busy rejections.
    retry_after: float = 0.05
    #: Funnel execution through one lock — required for SUTs without
    #: internal concurrency control (the relational engine's catalog).
    serialize: bool = False
    #: Admission ceiling on estimated traversal rows; None disables.
    max_estimated_rows: float | None = None
    #: Completed op_key outcomes kept for duplicate-replay (FIFO).
    dedup_capacity: int = 65536
    #: Default grace for :meth:`ReproServer.drain` (SIGTERM handling):
    #: stop accepting, let in-flight requests finish for up to this
    #: many seconds, then close.
    drain_timeout: float = 5.0


class _DedupEntry:
    """Lifecycle of one op_key: in-flight → done(outcome)."""

    __slots__ = ("done", "outcome", "waiters")

    def __init__(self) -> None:
        self.done = False
        self.outcome: dict | None = None
        #: (connection, request id) pairs awaiting the first execution.
        self.waiters: list[tuple["_Connection", object]] = []


class _Connection:
    """One accepted client connection (reader thread + write lock)."""

    def __init__(self, sock: socket.socket, peer) -> None:
        self.sock = sock
        self.peer = peer
        self.write_lock = threading.Lock()
        self.closed = False

    def send(self, message: dict) -> None:
        """Best-effort framed write (a vanished client is not an error)."""
        try:
            with self.write_lock:
                codec.send_message(self.sock, message)
        except OSError:
            self.close()

    def close(self) -> None:
        self.closed = True
        try:
            # shutdown() first: close() alone does not interrupt a
            # thread blocked in recv() on this socket (the in-flight
            # syscall keeps the kernel socket alive, so the peer never
            # sees a FIN until the next message arrives).
            self.sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass  # already disconnected
        try:
            self.sock.close()
        except OSError:  # pragma: no cover - double close
            pass


class ReproServer:
    """Serves one SUT over the wire protocol."""

    def __init__(self, sut, config: ServerConfig | None = None,
                 digest_fn=None) -> None:
        self.sut = sut
        self.config = config or ServerConfig()
        #: Zero-argument callable returning the SUT's state digest
        #: (admin ``digest`` action); None disables the action.
        self.digest_fn = digest_fn
        self.admission = AdmissionController.for_sut(
            sut, self.config.max_estimated_rows)
        self._listener: socket.socket | None = None
        self._queue: queue.Queue = queue.Queue(
            maxsize=max(1, self.config.queue_size))
        self._serialize_lock = threading.Lock() \
            if self.config.serialize else None
        self._threads: list[threading.Thread] = []
        self._connections: list[_Connection] = []
        self._conn_lock = threading.Lock()
        self._dedup: OrderedDict[str, _DedupEntry] = OrderedDict()
        self._dedup_lock = threading.Lock()
        self._stats_lock = threading.Lock()
        self._stats = {
            "requests": 0,
            "executed": 0,
            "errors": 0,
            "rejected_busy": 0,
            "rejected_admission": 0,
            "deduped": 0,
        }
        self._shutdown = threading.Event()
        self._draining = False
        self._active_jobs = 0
        self._active_lock = threading.Lock()

    # -- lifecycle ---------------------------------------------------------

    @property
    def address(self) -> tuple[str, int]:
        if self._listener is None:
            raise RuntimeError("server not started")
        return self._listener.getsockname()[:2]

    def start(self) -> tuple[str, int]:
        """Bind, spawn workers and the accept loop; return (host, port)."""
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.config.host, self.config.port))
        listener.listen(64)
        self._listener = listener
        for index in range(max(1, self.config.workers)):
            thread = threading.Thread(target=self._worker_main,
                                      name=f"repro-net-worker-{index}",
                                      daemon=True)
            thread.start()
            self._threads.append(thread)
        acceptor = threading.Thread(target=self._accept_main,
                                    name="repro-net-accept", daemon=True)
        acceptor.start()
        self._threads.append(acceptor)
        return self.address

    def serve_forever(self) -> None:
        """Block until :meth:`shutdown` (CLI foreground mode)."""
        if self._listener is None:
            self.start()
        self._shutdown.wait()

    def _close_listener(self) -> None:
        """Stop accepting new connections (idempotent)."""
        if self._listener is None:
            return
        try:
            # shutdown() wakes the thread blocked in accept();
            # close() alone leaves the kernel listener alive under
            # that in-flight syscall, still completing handshakes
            # nobody will ever serve.
            self._listener.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass  # never connected, or already shut down
        try:
            self._listener.close()
        except OSError:  # pragma: no cover
            pass

    def drain(self, timeout: float | None = None) -> bool:
        """Graceful SIGTERM path: finish the in-flight work, then stop.

        Stops accepting *new connections* immediately but keeps
        serving the live ones: queued requests execute, pipelined
        batches complete, and duplicate-waiters parked on an in-flight
        ``op_key`` hear their replayed outcome — none of which survives
        a bare :meth:`shutdown`, which resets every socket mid-batch.
        Once the queue is empty and no worker holds a job (or
        ``timeout`` seconds pass), the full shutdown runs.  Returns
        True when the drain completed cleanly, False on timeout.
        """
        if timeout is None:
            timeout = self.config.drain_timeout
        self._draining = True
        self._close_listener()
        deadline = time.monotonic() + max(0.0, timeout)
        idle_checks = 0
        while time.monotonic() < deadline:
            with self._active_lock:
                active = self._active_jobs
            if self._queue.empty() and active == 0:
                # Require a few consecutive idle observations: a reader
                # thread may be between recv() and queue.put.
                idle_checks += 1
                if idle_checks >= 3:
                    break
            else:
                idle_checks = 0
            time.sleep(0.005)
        with self._active_lock:
            active = self._active_jobs
        completed = self._queue.empty() and active == 0
        self.shutdown()
        return completed

    def shutdown(self) -> None:
        """Stop accepting, close connections, release workers."""
        if self._shutdown.is_set():
            return  # idempotent: sentinels are already in flight
        self._shutdown.set()
        self._close_listener()
        with self._conn_lock:
            connections = list(self._connections)
        for connection in connections:
            connection.close()
        # One blocking put per worker: with jobs still queued,
        # put_nowait would drop sentinels and leave workers parked on
        # get() forever.  Workers keep draining the backlog, so each
        # put completes once a slot frees up.
        for __ in range(max(1, self.config.workers)):
            self._queue.put(None)

    def stats(self) -> dict:
        with self._stats_lock:
            counters = dict(self._stats)
        counters["admission_admitted"] = self.admission.admitted
        counters["admission_rejected"] = self.admission.rejected
        return counters

    def _count(self, name: str, telemetry_name: str | None = None) -> None:
        with self._stats_lock:
            self._stats[name] += 1
        if telemetry_name is not None and telemetry.active:
            telemetry.counter(telemetry_name).inc()

    # -- accept / read loops -----------------------------------------------

    def _accept_main(self) -> None:
        while not self._shutdown.is_set():
            try:
                sock, peer = self._listener.accept()
            except OSError:
                return  # listener closed by shutdown()
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            connection = _Connection(sock, peer)
            with self._conn_lock:
                self._connections.append(connection)
            thread = threading.Thread(
                target=self._connection_main, args=(connection,),
                name=f"repro-net-conn-{peer[1]}", daemon=True)
            thread.start()

    def _connection_main(self, connection: _Connection) -> None:
        try:
            while not connection.closed:
                try:
                    message = codec.recv_message(connection.sock)
                except codec.CodecError as exc:
                    # Framing is unrecoverable mid-stream: answer what
                    # we can, then drop the connection.
                    connection.send(self._error_response(
                        None, "fatal", f"protocol error: {exc}"))
                    return
                except OSError:
                    return
                if message is None:
                    return  # clean EOF
                self._handle_message(connection, message)
        finally:
            connection.close()
            with self._conn_lock:
                if connection in self._connections:
                    self._connections.remove(connection)

    # -- request handling --------------------------------------------------

    @staticmethod
    def _error_response(request_id, error: str, message: str,
                        retry_after: float | None = None) -> dict:
        response = {"v": codec.PROTOCOL_VERSION, "id": request_id,
                    "kind": "error", "error": error, "message": message}
        if retry_after is not None:
            response["retry_after"] = retry_after
        return response

    def _handle_message(self, connection: _Connection,
                        message: dict) -> None:
        self._count("requests", REQUESTS_COUNTER)
        request_id = message.get("id")
        kind = message.get("kind")
        if kind == "admin":
            connection.send(self._handle_admin(request_id, message))
            return
        if kind != "execute":
            connection.send(self._error_response(
                request_id, "fatal", f"unknown request kind {kind!r}"))
            return
        try:
            op = codec.decode_operation(message.get("op"))
        except codec.CodecError as exc:
            self._count("errors")
            connection.send(self._error_response(
                request_id, "fatal", f"undecodable operation: {exc}"))
            return

        verdict = self.admission.review(op)
        if not verdict.admitted:
            self._count("rejected_admission", ADMISSION_COUNTER)
            connection.send(self._error_response(
                request_id, "rejected",
                f"admission control refused {op.op_class}: estimated "
                f"{verdict.estimated_rows:.0f} rows > "
                f"{self.admission.max_estimated_rows:.0f} "
                f"({verdict.derivation})"))
            return

        op_key = message.get("op_key")
        if op_key is not None:
            entry, is_duplicate = self._dedup_claim(
                op_key, connection, request_id)
            if is_duplicate:
                self._count("deduped", DEDUP_COUNTER)
                if entry.done:
                    connection.send(self._replay(entry, request_id))
                # else: registered as a waiter; answered on completion.
                return
        try:
            self._queue.put_nowait((connection, request_id, op, op_key))
        except queue.Full:
            self._count("rejected_busy", BUSY_COUNTER)
            busy = self._error_response(
                request_id, "busy",
                f"request queue full ({self.config.queue_size})",
                retry_after=self.config.retry_after)
            if op_key is not None:
                # Duplicates that registered as waiters between the
                # claim and this rejection must hear the busy error
                # too, or their clients block for the full timeout.
                for waiter_conn, waiter_id in \
                        self._dedup_abandon(op_key):
                    waiter_conn.send(dict(busy, id=waiter_id))
            connection.send(busy)

    def _handle_admin(self, request_id, message: dict) -> dict:
        action = message.get("action")
        if action == "ping":
            return {"v": codec.PROTOCOL_VERSION, "id": request_id,
                    "kind": "admin-result",
                    "value": {"sut": getattr(self.sut, "name", "?"),
                              "protocol": codec.PROTOCOL_VERSION}}
        if action == "stats":
            return {"v": codec.PROTOCOL_VERSION, "id": request_id,
                    "kind": "admin-result", "value": self.stats()}
        if action == "digest":
            if self.digest_fn is None:
                return self._error_response(
                    request_id, "fatal",
                    "server has no digest function configured")
            # Quiesce relative to serialized execution when configured;
            # the store SUT's snapshot readers are MVCC-safe anyway.
            if self._serialize_lock is not None:
                with self._serialize_lock:
                    digest = self.digest_fn()
            else:
                digest = self.digest_fn()
            return {"v": codec.PROTOCOL_VERSION, "id": request_id,
                    "kind": "admin-result", "value": {"digest": digest}}
        return self._error_response(
            request_id, "fatal", f"unknown admin action {action!r}")

    # -- dedup -------------------------------------------------------------

    def _dedup_claim(self, op_key: str, connection: _Connection,
                     request_id) -> tuple[_DedupEntry, bool]:
        """Claim a token; True means another attempt owns execution."""
        with self._dedup_lock:
            entry = self._dedup.get(op_key)
            if entry is None:
                entry = _DedupEntry()
                self._dedup[op_key] = entry
                while len(self._dedup) > self.config.dedup_capacity:
                    # Evict the oldest *completed* outcome only.
                    for key in self._dedup:
                        if self._dedup[key].done:
                            del self._dedup[key]
                            break
                    else:
                        break
                return entry, False
            if not entry.done:
                entry.waiters.append((connection, request_id))
            return entry, True

    def _dedup_abandon(self, op_key: str) -> list:
        """Drop an in-flight claim; return waiters owed an answer.

        The next request with this token re-executes from scratch.
        The caller must send each returned ``(connection, request_id)``
        waiter a response — they are owed one and nothing else will
        answer them.
        """
        with self._dedup_lock:
            entry = self._dedup.get(op_key)
            if entry is None or entry.done:
                return []
            del self._dedup[op_key]
            waiters, entry.waiters = entry.waiters, []
            return waiters

    def _dedup_complete(self, op_key: str, outcome: dict,
                        ) -> tuple[_DedupEntry | None, list]:
        """Record the outcome; return the entry and waiters to answer."""
        with self._dedup_lock:
            entry = self._dedup.get(op_key)
            if entry is None:  # pragma: no cover - abandoned meanwhile
                return None, []
            entry.done = True
            entry.outcome = outcome
            waiters, entry.waiters = entry.waiters, []
            return entry, waiters

    @staticmethod
    def _is_transient_outcome(outcome: dict) -> bool:
        return (outcome.get("kind") == "error"
                and outcome.get("error") == "transient")

    @staticmethod
    def _replay(entry: _DedupEntry, request_id) -> dict:
        response = dict(entry.outcome)
        response["id"] = request_id
        response["deduped"] = True
        return response

    # -- workers -----------------------------------------------------------

    def _worker_main(self) -> None:
        while True:
            job = self._queue.get()
            if job is None:
                return  # shutdown sentinel
            with self._active_lock:
                self._active_jobs += 1
            try:
                self._run_job(job)
            finally:
                with self._active_lock:
                    self._active_jobs -= 1

    def _run_job(self, job) -> None:
        connection, request_id, op, op_key = job
        outcome = self._execute(op)
        if op_key is not None:
            if self._is_transient_outcome(outcome):
                # A transient failure (e.g. a write conflict under
                # concurrent workers) must not become the token's
                # remembered outcome: the update never applied, so
                # the client's retry has to re-execute rather than
                # replay the error until its budget runs out.
                # Waiters hear the transient error directly.
                for waiter_conn, waiter_id in \
                        self._dedup_abandon(op_key):
                    waiter_conn.send(dict(outcome, id=waiter_id))
            else:
                entry, waiters = self._dedup_complete(
                    op_key, outcome)
                if entry is not None:
                    for waiter_conn, waiter_id in waiters:
                        waiter_conn.send(
                            self._replay(entry, waiter_id))
        response = dict(outcome)
        response["id"] = request_id
        connection.send(response)

    def _execute(self, op) -> dict:
        """Run one operation; build the (id-less) outcome message."""
        try:
            if telemetry.active:
                with telemetry.span("server.execute",
                                    operation=op.op_class):
                    result = self._execute_inner(op)
            else:
                result = self._execute_inner(op)
        except TransientError as exc:
            self._count("errors")
            return self._error_response(
                None, "transient", f"{type(exc).__name__}: {exc}")
        except FatalSUTError as exc:
            self._count("errors")
            return self._error_response(
                None, "fatal", f"{type(exc).__name__}: {exc}")
        except Exception as exc:  # anything else is fatal to the op
            self._count("errors")
            return self._error_response(
                None, "fatal",
                f"unhandled {type(exc).__name__}: {exc}")
        self._count("executed")
        try:
            encoded = codec.encode_result(result)
        except codec.CodecError as exc:
            self._count("errors")
            return self._error_response(
                None, "fatal", f"unencodable result: {exc}")
        return {"v": codec.PROTOCOL_VERSION, "id": None,
                "kind": "result", "result": encoded}

    def _execute_inner(self, op):
        if self._serialize_lock is not None:
            with self._serialize_lock:
                return self.sut.execute(op)
        return self.sut.execute(op)
