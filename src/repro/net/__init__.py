"""Wire protocol: client/server access to any system under test.

The paper's driver measures latency-under-load against a SUT running as
a network service, not an in-process library.  This package supplies
that boundary without changing anything above it:

* :mod:`repro.net.codec` — a versioned, length-prefixed JSON wire codec
  over a type registry covering every operation and result shape of the
  unified ``execute(op) -> OperationResult`` API (the codec is the
  canonical serialized form of that API);
* :mod:`repro.net.admission` — pre-flight cost estimation reusing the
  engine's cardinality estimator, so runaway traversals are refused
  before execution;
* :mod:`repro.net.server` — a threaded socket server fronting any SUT:
  bounded worker pool, per-connection request pipelining, backpressure
  (reject-with-retry-after when the queue is full), and exactly-once
  update application keyed on client-supplied operation tokens;
* :mod:`repro.net.client` — :class:`RemoteConnector`, implementing the
  same connector protocol as the in-process SUTs (connection pool,
  request batching/pipelining, timeout mapping onto the existing
  error taxonomy) so the scheduler, resilience layer, fault injector
  and the ``crosscheck``/``chaos`` CLIs work unchanged over the wire.
"""

from .admission import Admission, AdmissionController
from .client import (
    AdmissionRejectedError,
    RemoteConnector,
    RemoteFatalError,
    RemoteProtocolError,
    RemoteTransientError,
    ServerBusyError,
)
from .codec import (
    CodecError,
    FrameReader,
    FrameTooLargeError,
    PROTOCOL_VERSION,
    TruncatedFrameError,
    UnsupportedVersionError,
    decode_operation,
    decode_result,
    decode_value,
    encode_frame,
    encode_operation,
    encode_result,
    encode_value,
)
from .server import ReproServer, ServerConfig

__all__ = [
    "Admission",
    "AdmissionController",
    "AdmissionRejectedError",
    "CodecError",
    "FrameReader",
    "FrameTooLargeError",
    "PROTOCOL_VERSION",
    "RemoteConnector",
    "RemoteFatalError",
    "RemoteProtocolError",
    "RemoteTransientError",
    "ReproServer",
    "ServerBusyError",
    "ServerConfig",
    "TruncatedFrameError",
    "UnsupportedVersionError",
    "decode_operation",
    "decode_result",
    "decode_value",
    "encode_frame",
    "encode_operation",
    "encode_result",
    "encode_value",
]
