"""Pre-flight admission control over the cardinality estimator.

The server refuses runaway traversals *before* execution, the way
ROADMAP item 1 prescribes: a complex read's expected intermediate
cardinality is estimated from the query's friendship-hop count (the
``O(D^hops · log n)`` complexity classes of the query registry) and the
graph's measured average degree, using exactly the arithmetic of
:class:`repro.engine.cardinality.CardinalityEstimator` — repeated
``knows`` expansions with the dedup damping factor.  An estimate above
the configured ceiling is rejected with a ``rejected`` wire error; the
client surfaces it as a non-retryable
:class:`~repro.net.client.AdmissionRejectedError` (retrying an over-cost
query cannot make it cheaper).

Short reads and updates are always admitted: they are point operations
whose cost does not depend on traversal fanout.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from ..engine.cardinality import DEDUP_DAMPING


@dataclass(frozen=True)
class Admission:
    """The verdict on one operation."""

    admitted: bool
    estimated_rows: float
    #: The estimator's reasoning chain (returned to the client on
    #: rejection, mirrored from ``Estimate.derivation``).
    derivation: str


class AdmissionController:
    """Admit or refuse operations from a per-query cost estimate."""

    def __init__(self, average_degree: float,
                 max_estimated_rows: float | None) -> None:
        self.average_degree = max(1.0, float(average_degree))
        self.max_estimated_rows = max_estimated_rows
        self._lock = threading.Lock()
        self.admitted = 0
        self.rejected = 0

    # -- construction ------------------------------------------------------

    @classmethod
    def for_sut(cls, sut,
                max_estimated_rows: float | None) -> "AdmissionController":
        """Build a controller from whatever SUT the server fronts."""
        catalog = getattr(sut, "catalog", None)
        if catalog is not None:
            return cls.from_catalog(catalog, max_estimated_rows)
        store = getattr(sut, "store", None)
        if store is not None:
            return cls.from_store(store, max_estimated_rows)
        # An opaque SUT (e.g. a test double): admit on a neutral degree.
        return cls(1.0, max_estimated_rows)

    @classmethod
    def from_catalog(cls, catalog,
                     max_estimated_rows: float | None,
                     ) -> "AdmissionController":
        """Reuse the engine's estimator statistics directly."""
        from ..engine.cardinality import CardinalityEstimator

        estimator = CardinalityEstimator(catalog)
        return cls(estimator.average_degree(), max_estimated_rows)

    @classmethod
    def from_store(cls, store,
                   max_estimated_rows: float | None,
                   ) -> "AdmissionController":
        """Measure the average friendship degree off the graph store."""
        with store.transaction() as txn:
            persons = txn.count_vertices("person")
            if persons == 0:
                return cls(1.0, max_estimated_rows)
            total = sum(txn.degree("knows", vid)
                        for vid, _ in txn.vertices("person"))
        return cls(total / persons, max_estimated_rows)

    # -- estimation --------------------------------------------------------

    def estimate_rows(self, hops: int) -> tuple[float, str]:
        """Expected traversal cardinality of an ``hops``-hop query.

        The same chain the engine's estimator derives for a friendship
        pipeline: one row in, ``degree`` matches per expansion, with
        :data:`~repro.engine.cardinality.DEDUP_DAMPING` applied to every
        repeated expansion of the ``knows`` table.
        """
        rows = 1.0
        steps = []
        for hop in range(max(1, hops)):
            rows *= self.average_degree
            if hop > 0:
                rows *= DEDUP_DAMPING
            steps.append(f"hop{hop + 1}={rows:.0f}")
        return rows, (f"degree={self.average_degree:.1f}; "
                      + "; ".join(steps))

    def review(self, op) -> Admission:
        """Admit or refuse one decoded operation."""
        from ..core.operation import ComplexRead

        if self.max_estimated_rows is None \
                or not isinstance(op, ComplexRead):
            with self._lock:
                self.admitted += 1
            return Admission(True, 0.0, "always admitted")
        from ..queries.registry import COMPLEX_QUERIES

        entry = COMPLEX_QUERIES.get(op.query_id)
        hops = entry.hops if entry is not None else 3
        rows, derivation = self.estimate_rows(hops)
        admitted = rows <= self.max_estimated_rows
        with self._lock:
            if admitted:
                self.admitted += 1
            else:
                self.rejected += 1
        return Admission(admitted, rows, derivation)
