"""The sharded store as a system under test.

``ShardedStoreSUT`` extends :class:`repro.core.sut.BaseSUT`, so it
plugs into everything that consumes the unified SUT API unchanged: the
interactive benchmark, the differential and golden validators, the
chaos harness's fault-injecting connector, and — because it also
satisfies the connector contract (``supports_reads``/``is_remote``/
``execute``/``close``) — the wire server under ``repro serve``.

Reads run the ordinary query registry against the router's
:class:`~repro.shard.router.ShardedTransaction`; updates go through
the router's epoch-locked (two-phase when cross-shard) commit; the
final-state ``digest()`` is the merged canonical snapshot digest, the
exact oracle every other SUT is judged by.
"""

from __future__ import annotations

from ..core.sut import BaseSUT
from ..datagen.update_stream import UpdateOperation
from ..errors import WorkloadError
from ..queries.registry import COMPLEX_QUERIES, SHORT_QUERIES
from ..workload.operations import EntityRef
from .router import ShardRouter
from .worker import ShardFaultPlan


class ShardedStoreSUT(BaseSUT):
    """N worker processes + a router, behind the one-SUT interface."""

    name = "sharded-store"

    #: With a WAL directory the sharded store survives worker crashes:
    #: the connector-conformance kit's crash-recovery case keys off
    #: this flag (it is a property of the *connector instance* — a
    #: WAL-less instance reports False).
    @property
    def supports_recovery(self) -> bool:
        return self.router.supervisor is not None

    def __init__(self, router: ShardRouter) -> None:
        self.router = router

    @classmethod
    def for_network(cls, network, num_shards: int, *,
                    faults: ShardFaultPlan | None = None,
                    request_timeout: float = 30.0,
                    start_method: str | None = None,
                    wal_dir: str | None = None,
                    sync_wal: bool = False,
                    max_restarts: int = 8,
                    ) -> "ShardedStoreSUT":
        """Partition + bulk-load a generated network across workers."""
        return cls(ShardRouter.spawn(
            network, num_shards, faults=faults,
            request_timeout=request_timeout, start_method=start_method,
            wal_dir=wal_dir, sync_wal=sync_wal,
            max_restarts=max_restarts))

    @property
    def num_shards(self) -> int:
        return self.router.num_shards

    # -- BaseSUT hooks -----------------------------------------------------

    def _complex(self, query_id: int, params: object):
        entry = COMPLEX_QUERIES.get(query_id)
        if entry is None:
            raise WorkloadError(f"unknown complex query Q{query_id}")
        with self.router.transaction() as txn:
            return entry.run(txn, params)

    def _short(self, query_id: int, entity: EntityRef):
        entry = SHORT_QUERIES.get(query_id)
        if entry is None:
            raise WorkloadError(f"unknown short query S{query_id}")
        with self.router.transaction() as txn:
            return entry.run(txn, entity.id)

    def _update(self, operation: UpdateOperation) -> None:
        self.router.execute_update(operation)

    # -- oracle / lifecycle ------------------------------------------------

    def snapshot(self) -> dict[str, list[dict]]:
        """Merged canonical whole-graph snapshot (the digest input)."""
        return self.router.snapshot()

    def digest(self) -> str:
        """Final-state digest; byte-comparable with the single store."""
        return self.router.digest()

    def stats(self) -> dict:
        return self.router.stats()

    def close(self) -> None:
        """Stop the worker processes (idempotent)."""
        self.router.close()
