"""Placement rules of the sharded store.

Everything the router and the workers must agree on lives here, and all
of it is derivable from entity ids alone (the id spaces of
:mod:`repro.ids` encode the entity kind in the top byte):

* **vertex ownership** — persons and content (forums, posts, comments)
  hash to ``serial % num_shards``, the same person-hash discipline the
  driver's partitioning and the parallel DATAGEN use.  Static entities
  (tags, tag classes, places, organisations) are a small, read-only
  dimension table; they live on shard 0 only, not replicated.
* **edge-half placement** — each directed adjacency record is *anchored*
  at one endpoint (OUT at ``src``, IN at ``dst``) and lives on the shard
  owning its anchor.  When the anchor is static the half follows the
  other, non-static endpoint, so ``neighbors(label, person, OUT)`` for
  e.g. *has_interest* stays a single-shard call; a static↔static edge
  (``is_part_of``, ``has_type``, organisation ``is_located_in``) lives
  on shard 0 with its vertices.

The digest invariant follows from these rules: every vertex row and
every OUT adjacency record exists on exactly one shard, so the union of
per-shard canonical snapshots is a partition of the single-store
snapshot — merging the section row-sets and re-sorting reproduces it
byte for byte.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..ids import EntityKind, serial_of
from ..schema.dataset import SocialNetwork
from ..store.loader import create_snb_indexes, load_network

_SERIAL_BITS = 56

#: Kinds of the small read-only dimension tables pinned to shard 0.
STATIC_KINDS = frozenset({
    int(EntityKind.TAG), int(EntityKind.TAG_CLASS),
    int(EntityKind.PLACE), int(EntityKind.ORGANISATION),
})


def is_static(vid: int) -> bool:
    """Does the id belong to a dimension kind pinned to shard 0?"""
    return (vid >> _SERIAL_BITS) in STATIC_KINDS


def owner_of(vid: int, num_shards: int) -> int:
    """The shard owning a vertex (serving its row and anchored halves)."""
    if is_static(vid):
        return 0
    return serial_of(vid) % num_shards


def anchor_shard(anchor: int, other: int, num_shards: int) -> int:
    """The shard storing the adjacency half anchored at ``anchor``.

    Static anchors delegate to the other endpoint so person/message
    adjacency over dimension edges stays co-located with the entity.
    """
    if not is_static(anchor):
        return serial_of(anchor) % num_shards
    if not is_static(other):
        return serial_of(other) % num_shards
    return 0


# ---------------------------------------------------------------------------
# write-set partitioning (the router side of an update)
# ---------------------------------------------------------------------------

@dataclass
class ShardWrites:
    """The slice of one update's write-set bound for one shard."""

    #: ``(label, vid, props)`` vertex inserts owned by the shard.
    vertices: list[tuple[str, int, dict]] = field(default_factory=list)
    #: ``(label, direction value, anchor, other, props)`` halves.
    halves: list[tuple[str, str, int, int, dict | None]] = \
        field(default_factory=list)

    def __bool__(self) -> bool:
        return bool(self.vertices or self.halves)


def partition_writes(new_vertices: dict[tuple[str, int], dict],
                     new_edges: list[tuple[str, int, int, dict | None]],
                     num_shards: int) -> dict[int, ShardWrites]:
    """Split a recorded write-set by the placement rules.

    Input shapes match :class:`repro.store.graph.Transaction`'s write
    set; output maps shard index → its (possibly empty) slice.  Only
    shards with work appear in the result.
    """
    per_shard: dict[int, ShardWrites] = {}

    def writes(shard: int) -> ShardWrites:
        found = per_shard.get(shard)
        if found is None:
            found = per_shard[shard] = ShardWrites()
        return found

    for (label, vid), props in new_vertices.items():
        writes(owner_of(vid, num_shards)).vertices.append(
            (label, vid, props))
    for label, src, dst, props in new_edges:
        writes(anchor_shard(src, dst, num_shards)).halves.append(
            (label, "out", src, dst, props))
        writes(anchor_shard(dst, src, num_shards)).halves.append(
            (label, "in", dst, src, props))
    return per_shard


# ---------------------------------------------------------------------------
# bulk-load partitioning (ships to workers at spawn, so keep it picklable)
# ---------------------------------------------------------------------------

@dataclass
class ShardLoad:
    """One shard's bulk load: loader calls replayed in original order.

    ``calls`` entries are ``("vertices", label, rows)`` with rows of
    ``(vid, props)``, or ``("edge_halves", label, halves)`` with halves
    of ``(direction value, anchor, other, props)``.  Replaying the full
    call sequence (empty slices included) keeps per-shard insertion
    order — and therefore adjacency order and ordered-index tie
    order — identical to the single store's, restricted to this shard.
    """

    shard_index: int
    num_shards: int
    calls: list[tuple] = field(default_factory=list)


class _RecordingStore:
    """Duck-typed stand-in for :class:`GraphStore` under ``load_network``.

    Captures the loader's bulk calls verbatim so partitioning reuses
    the real entity→row converters instead of duplicating them; index
    registration is replayed worker-side via ``create_snb_indexes``.
    """

    def __init__(self) -> None:
        self.vertex_calls: list[tuple[str, list]] = []
        self.edge_calls: list[tuple[str, list]] = []
        self.order: list[tuple[str, int]] = []

    def create_hash_index(self, label: str, prop: str) -> None:
        pass

    def create_ordered_index(self, label: str, prop: str) -> None:
        pass

    def bulk_insert_vertices(self, label: str, rows: list) -> None:
        self.order.append(("vertices", len(self.vertex_calls)))
        self.vertex_calls.append((label, rows))

    def bulk_insert_edges(self, label: str, rows: list) -> None:
        self.order.append(("edges", len(self.edge_calls)))
        self.edge_calls.append((label, rows))


def partition_bulk(network: SocialNetwork,
                   num_shards: int) -> list[ShardLoad]:
    """Route a generated network's bulk load across ``num_shards``."""
    recorder = _RecordingStore()
    load_network(network, store=recorder)  # type: ignore[arg-type]

    loads = [ShardLoad(shard, num_shards) for shard in range(num_shards)]
    for kind, position in recorder.order:
        if kind == "vertices":
            label, rows = recorder.vertex_calls[position]
            grouped: list[list] = [[] for __ in range(num_shards)]
            for vid, props in rows:
                grouped[owner_of(vid, num_shards)].append((vid, props))
            for shard, load in enumerate(loads):
                load.calls.append(("vertices", label, grouped[shard]))
        else:
            label, rows = recorder.edge_calls[position]
            grouped = [[] for __ in range(num_shards)]
            for src, dst, props in rows:
                grouped[anchor_shard(src, dst, num_shards)].append(
                    ("out", src, dst, props))
                grouped[anchor_shard(dst, src, num_shards)].append(
                    ("in", dst, src, props))
            for shard, load in enumerate(loads):
                load.calls.append(("edge_halves", label, grouped[shard]))
    return loads


def load_shard(load: ShardLoad):
    """Build one shard's local :class:`GraphStore` from its slice."""
    from ..store.graph import GraphStore

    store = GraphStore()
    create_snb_indexes(store)
    for call in load.calls:
        if call[0] == "vertices":
            store.bulk_insert_vertices(call[1], call[2])
        else:
            store.bulk_insert_edge_halves(call[1], call[2])
    return store
