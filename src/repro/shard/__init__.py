"""Multi-process sharded execution of the graph store.

The scale-out answer to the paper's Table 5: partition the SNB graph
by person-hash across worker processes (each its own interpreter, its
own GIL), route point operations to the owning shard, scatter-gather
the 2-hop traversals with per-shard partial aggregation, and commit
cross-shard updates two-phase under a router-held epoch — all while
preserving the canonical final-state digest byte for byte, so every
existing oracle (crosscheck, differential, chaos, golden) applies to
the sharded path unchanged.
"""

from .router import ShardRouter, ShardedTransaction, stable_update_key
from .routing import (
    ShardLoad,
    ShardWrites,
    anchor_shard,
    is_static,
    owner_of,
    partition_bulk,
    partition_writes,
)
from .supervisor import WorkerSupervisor
from .sut import ShardedStoreSUT
from .txlog import CoordinatorLog
from .worker import (
    InjectedWorkerAbortError,
    ShardDurability,
    ShardFaultPlan,
)

__all__ = [
    "CoordinatorLog",
    "InjectedWorkerAbortError",
    "ShardDurability",
    "ShardFaultPlan",
    "ShardLoad",
    "WorkerSupervisor",
    "ShardRouter",
    "ShardWrites",
    "ShardedStoreSUT",
    "ShardedTransaction",
    "anchor_shard",
    "is_static",
    "owner_of",
    "partition_bulk",
    "partition_writes",
    "stable_update_key",
]
