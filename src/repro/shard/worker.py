"""The shard worker process: one store partition behind a pipe.

Spawn-safety follows the :mod:`repro.datagen.parallel` idiom: the
worker entry point and everything it touches are module-level, and the
whole configuration (the shard's pre-partitioned bulk slice, the fault
plan) arrives as picklable process arguments — nothing is inherited
from parent interpreter state, so ``spawn``, ``fork`` and
``forkserver`` all work.

The worker is deliberately *serial*: it owns a local
:class:`~repro.store.graph.GraphStore` holding only the vertices and
adjacency halves routed to it, and answers requests from its pipe one
at a time.  Serial execution is what makes the router's retry story
airtight — responses come back in request order, so a timed-out
request's late response is always drained before the retry's, and the
``op_key`` applied-table makes every retried write idempotent
(exactly-once application, same contract as the wire server's dedup).

Chaos hooks: a :class:`ShardFaultPlan` injects deterministic,
seeded *worker aborts* (a transient raise before any state change) and
*response delays* (the worker applies, then stalls past the router's
budget — the retry must be absorbed by the applied-table, never
double-applied).  Each fault fires at most once per op key, so a
perturbed run converges to the fault-free digest.
"""

from __future__ import annotations

import hashlib
import os
import time
from collections import deque
from dataclasses import dataclass

from ..errors import TransientError
from ..store.graph import GraphStore
from .routing import ShardLoad, load_shard

#: Worker-side span buffer bound — enough for the soak sizes the tests
#: run, without letting a long benchmark grow worker memory unbounded.
_SPAN_BUFFER = 4096


class InjectedWorkerAbortError(TransientError):
    """A seeded worker-side abort (chaos); clears on retry."""


@dataclass(frozen=True)
class ShardFaultPlan:
    """Deterministic worker-side fault schedule (picklable).

    Rates are per *write* op key; draws are seeded hashes of
    ``(seed, op_key)`` so runs are reproducible and both faults can be
    made to hit the same operation.  ``delay_seconds`` must exceed the
    router's request timeout for the delay to surface as a
    :class:`~repro.errors.ShardTimeoutError` retry.
    """

    abort_rate: float = 0.0
    delay_rate: float = 0.0
    delay_seconds: float = 0.0
    seed: int = 0

    def _draw(self, salt: str, op_key: str) -> float:
        digest = hashlib.sha256(
            f"{self.seed}:{salt}:{op_key}".encode()).digest()
        return int.from_bytes(digest[:8], "big") / float(1 << 64)

    def should_abort(self, op_key: str) -> bool:
        return self.abort_rate > 0.0 and \
            self._draw("abort", op_key) < self.abort_rate

    def should_delay(self, op_key: str) -> bool:
        return self.delay_rate > 0.0 and \
            self._draw("delay", op_key) < self.delay_rate


def _encode_error(exc: BaseException) -> tuple[str, str, bool]:
    """(type name, message, transient?) — picklable error surrogate."""
    return (type(exc).__name__, str(exc),
            isinstance(exc, (TransientError, TimeoutError,
                             ConnectionError)))


class _WorkerState:
    """Everything one worker process owns."""

    def __init__(self, load: ShardLoad, faults: ShardFaultPlan) -> None:
        self.shard_index = load.shard_index
        self.store: GraphStore = load_shard(load)
        self.faults = faults
        #: op key → True once its write-set is fully applied.  Replays
        #: (driver retries after an injected abort or a router timeout)
        #: return success without touching the store again.
        self.applied: dict[str, bool] = {}
        #: op key → (vertices, halves) staged by a 2PC prepare.
        self.staged: dict[str, tuple[list, list]] = {}
        self.spans: deque = deque(maxlen=_SPAN_BUFFER)
        self.requests = 0
        self.replayed = 0
        self.fault_counts = {"abort": 0, "delay": 0}
        self._fault_spent: set[tuple[str, str]] = set()

    # -- chaos ------------------------------------------------------------

    def _maybe_fault(self, op_key: str) -> None:
        """Fire each seeded fault at most once per op key."""
        if self.faults.should_delay(op_key) and \
                ("delay", op_key) not in self._fault_spent:
            self._fault_spent.add(("delay", op_key))
            self.fault_counts["delay"] += 1
            time.sleep(self.faults.delay_seconds)
        if self.faults.should_abort(op_key) and \
                ("abort", op_key) not in self._fault_spent:
            self._fault_spent.add(("abort", op_key))
            self.fault_counts["abort"] += 1
            raise InjectedWorkerAbortError(
                f"injected worker abort on shard {self.shard_index} "
                f"for {op_key[:12]}")

    # -- write path -------------------------------------------------------

    def apply(self, op_key: str, vertices: list, halves: list) -> str:
        """Single-shard commit: validate + apply atomically."""
        if op_key in self.applied:
            self.replayed += 1
            return "replayed"
        self._maybe_fault(op_key)
        self.store.apply_shard_writes(vertices, halves)
        self.applied[op_key] = True
        return "applied"

    def prepare(self, op_key: str, vertices: list, halves: list) -> str:
        """2PC phase 1: validate and stage; nothing becomes visible."""
        if op_key in self.applied:
            self.replayed += 1
            return "already-applied"
        self._maybe_fault(op_key)
        self.store.validate_shard_writes(vertices)
        self.staged[op_key] = (vertices, halves)
        return "prepared"

    def commit(self, op_key: str) -> str:
        """2PC phase 2: apply the staged slice."""
        if op_key in self.applied:
            self.staged.pop(op_key, None)
            self.replayed += 1
            return "replayed"
        vertices, halves = self.staged.pop(op_key)
        self.store.apply_shard_writes(vertices, halves)
        self.applied[op_key] = True
        return "committed"

    def abort(self, op_key: str) -> str:
        self.staged.pop(op_key, None)
        return "aborted"

    # -- read path --------------------------------------------------------

    def dispatch(self, method: str, args: tuple):
        self.requests += 1
        if method == "apply":
            return self.apply(*args)
        if method == "prepare":
            return self.prepare(*args)
        if method == "commit":
            return self.commit(*args)
        if method == "abort":
            return self.abort(*args)
        if method == "snapshot":
            from ..validation.snapshot import snapshot_store
            return snapshot_store(self.store)
        if method == "busy":
            # CPU-bound spin for the scale-up benchmark: the work runs
            # on this process's own GIL, which is the whole point.
            deadline = time.perf_counter() + args[0]
            while time.perf_counter() < deadline:
                pass
            return None
        if method == "drain_spans":
            drained = list(self.spans)
            self.spans.clear()
            return drained
        if method == "stats":
            return {
                "pid": os.getpid(),
                "shard": self.shard_index,
                "requests": self.requests,
                "commits": self.store.commit_count,
                "applied": len(self.applied),
                "replayed": self.replayed,
                "staged": len(self.staged),
                "faults": dict(self.fault_counts),
            }
        if method == "ping":
            return os.getpid()
        return self._read(method, args)

    def _read(self, method: str, args: tuple):
        with self.store.transaction() as txn:
            if method == "vertex":
                return txn.vertex(*args)
            if method == "vertex_many":
                return txn.vertex_many(*args)
            if method == "neighbors":
                return list(txn.neighbors(*args))
            if method == "neighbors_many":
                return txn.neighbors_many(*args)
            if method == "lookup":
                return txn.lookup(*args)
            if method == "scan_range":
                label, prop, low, high, reverse = args
                return list(txn.scan_range(label, prop, low, high,
                                           reverse=reverse))
            if method == "vertices":
                return list(txn.vertices(*args))
            if method == "edges":
                return list(txn.edges(*args))
            if method == "count_vertices":
                return txn.count_vertices(*args)
        raise ValueError(f"unknown shard RPC {method!r}")


def shard_worker_main(conn, load: ShardLoad,
                      faults: ShardFaultPlan) -> None:
    """Process entry point: serve requests until ``shutdown``.

    Every request is answered — errors travel back as picklable
    ``(type name, message, transient?)`` surrogates the router re-raises
    onto the taxonomy — and per-request wall-clock spans are buffered
    for the router to stitch onto per-shard telemetry tracks.
    """
    state = _WorkerState(load, faults)
    track = f"shard-{load.shard_index}"
    while True:
        try:
            seq, method, args = conn.recv()
        except (EOFError, OSError):
            break
        if method == "shutdown":
            conn.send((seq, "ok", None))
            break
        started = time.time()
        try:
            payload = state.dispatch(method, args)
        except BaseException as exc:
            status, payload = "err", _encode_error(exc)
        else:
            status = "ok"
        state.spans.append((f"{track}.{method}", started, time.time(),
                            {"shard": load.shard_index, "ok":
                             status == "ok"}))
        try:
            conn.send((seq, status, payload))
        except (BrokenPipeError, OSError):
            break
    conn.close()
