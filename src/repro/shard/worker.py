"""The shard worker process: one store partition behind a pipe.

Spawn-safety follows the :mod:`repro.datagen.parallel` idiom: the
worker entry point and everything it touches are module-level, and the
whole configuration (the shard's pre-partitioned bulk slice, the fault
plan, the durability settings) arrives as picklable process arguments —
nothing is inherited from parent interpreter state, so ``spawn``,
``fork`` and ``forkserver`` all work.

The worker is deliberately *serial*: it owns a local
:class:`~repro.store.graph.GraphStore` holding only the vertices and
adjacency halves routed to it, and answers requests from its pipe one
at a time.  Serial execution is what makes the router's retry story
airtight — responses come back in request order, so a timed-out
request's late response is always drained before the retry's, and the
``op_key`` applied-table makes every retried write idempotent
(exactly-once application, same contract as the wire server's dedup).

Durability (:class:`ShardDurability`): every write event is appended to
the shard's own WAL (:class:`repro.store.wal.ShardWAL`) *before* it is
acknowledged on the pipe, so a ``kill -9`` after the ack can never lose
the write.  A respawned worker rebuilds itself in ``__init__`` —
bulk-load the shard slice, replay the WAL (which also reconstructs the
exactly-once applied-table and the in-doubt 2PC stages) — before it
serves a single request, so the supervisor's recovery RPCs always see a
fully recovered shard.

Chaos hooks: a :class:`ShardFaultPlan` injects deterministic, seeded
*worker aborts* (a transient raise before any state change), *response
delays* (the worker applies, then stalls past the router's budget — the
retry must be absorbed by the applied-table, never double-applied), and
three *crash* faults — ``kill_rate`` (die before the ack: half the
draws before anything durable happened, half after the WAL append and
state apply), ``kill_after_prepare`` (ack the 2PC prepare, then die —
the in-doubt window), and ``torn_wal_rate`` (die mid-WAL-append,
leaving a torn trailing record).  Crash faults persist a spent marker
to a sidecar file *before* dying so the respawned worker never re-fires
them; each fault fires at most once per op key, so a perturbed run
converges to the fault-free digest.
"""

from __future__ import annotations

import hashlib
import os
import time
from collections import deque
from dataclasses import dataclass

from .. import telemetry
from ..errors import TransientError
from ..store.graph import GraphStore
from ..store.wal import (
    TORN_RECORD_COUNTER,
    ShardWAL,
    read_shard_log,
    replay_shard_log,
)
from .routing import ShardLoad, load_shard

#: Worker-side span buffer bound — enough for the soak sizes the tests
#: run, without letting a long benchmark grow worker memory unbounded.
_SPAN_BUFFER = 4096

#: Fault kinds whose spent markers must survive the crash they cause.
_CRASH_KINDS = ("kill", "kill_prepare", "torn")


class InjectedWorkerAbortError(TransientError):
    """A seeded worker-side abort (chaos); clears on retry."""


@dataclass(frozen=True)
class ShardDurability:
    """Where a shard's durable state lives (picklable).

    One directory shared by all shards of a run: per-shard WAL files,
    per-shard crash-fault spent files, and the router's coordinator
    log.  ``sync`` turns on fsync-per-append (the real durability
    guarantee; off by default because the tests' kill faults are
    process kills, which never lose OS-buffered writes).
    """

    wal_dir: str
    sync: bool = False

    def wal_path(self, shard_index: int) -> str:
        return os.path.join(self.wal_dir, f"shard-{shard_index}.wal")

    def spent_path(self, shard_index: int) -> str:
        return os.path.join(self.wal_dir, f"shard-{shard_index}.spent")


@dataclass(frozen=True)
class ShardFaultPlan:
    """Deterministic worker-side fault schedule (picklable).

    Rates are per *write* op key; draws are seeded hashes of
    ``(seed, salt, op_key)`` so runs are reproducible and different
    faults can be made to hit the same operation.  ``delay_seconds``
    must exceed the router's request timeout for the delay to surface
    as a :class:`~repro.errors.ShardTimeoutError` retry.  The crash
    rates (``kill_rate``, ``kill_after_prepare``, ``torn_wal_rate``)
    require a :class:`ShardDurability` — killing a WAL-less worker
    would genuinely lose acknowledged state, which is the one outcome
    the chaos harness exists to rule out.
    """

    abort_rate: float = 0.0
    delay_rate: float = 0.0
    delay_seconds: float = 0.0
    kill_rate: float = 0.0
    kill_after_prepare: float = 0.0
    torn_wal_rate: float = 0.0
    seed: int = 0

    def _draw(self, salt: str, op_key: str) -> float:
        digest = hashlib.sha256(
            f"{self.seed}:{salt}:{op_key}".encode()).digest()
        return int.from_bytes(digest[:8], "big") / float(1 << 64)

    def should_abort(self, op_key: str) -> bool:
        return self.abort_rate > 0.0 and \
            self._draw("abort", op_key) < self.abort_rate

    def should_delay(self, op_key: str) -> bool:
        return self.delay_rate > 0.0 and \
            self._draw("delay", op_key) < self.delay_rate

    def should_kill(self, op_key: str) -> bool:
        return self.kill_rate > 0.0 and \
            self._draw("kill", op_key) < self.kill_rate

    def kill_phase(self, op_key: str) -> str:
        """Where a ``kill_rate`` death lands: ``pre`` (before the WAL
        append — nothing durable; retry re-applies) or ``post`` (after
        WAL + state apply, before the ack — retry must replay)."""
        return "pre" if self._draw("killphase", op_key) < 0.5 else "post"

    def should_kill_after_prepare(self, op_key: str) -> bool:
        return self.kill_after_prepare > 0.0 and \
            self._draw("killprep", op_key) < self.kill_after_prepare

    def should_tear(self, op_key: str) -> bool:
        return self.torn_wal_rate > 0.0 and \
            self._draw("torn", op_key) < self.torn_wal_rate

    @property
    def has_crash_faults(self) -> bool:
        return self.kill_rate > 0.0 or self.kill_after_prepare > 0.0 \
            or self.torn_wal_rate > 0.0


def _encode_error(exc: BaseException) -> tuple[str, str, bool]:
    """(type name, message, transient?) — picklable error surrogate."""
    return (type(exc).__name__, str(exc),
            isinstance(exc, (TransientError, TimeoutError,
                             ConnectionError)))


class _WorkerState:
    """Everything one worker process owns."""

    def __init__(self, load: ShardLoad, faults: ShardFaultPlan,
                 durability: ShardDurability | None = None) -> None:
        self.shard_index = load.shard_index
        self.store: GraphStore = load_shard(load)
        self.faults = faults
        #: op key → True once its write-set is fully applied.  Replays
        #: (driver retries after an injected abort or a router timeout)
        #: return success without touching the store again.
        self.applied: dict[str, bool] = {}
        #: op key → (vertices, halves) staged by a 2PC prepare.
        self.staged: dict[str, tuple[list, list]] = {}
        self.spans: deque = deque(maxlen=_SPAN_BUFFER)
        self.requests = 0
        self.replayed = 0
        self.fault_counts = {"abort": 0, "delay": 0}
        self._fault_spent: set[tuple[str, str]] = set()
        #: Set by a fault that must ack first and die after; honored by
        #: the serving loop immediately after ``conn.send``.
        self.exit_after_send = False
        self.wal: ShardWAL | None = None
        self._spent_handle = None
        self.crash_fault_counts = {kind: 0 for kind in _CRASH_KINDS}
        self.recovered_ops = 0
        self.recovered_staged = 0
        self.torn_wal_records = 0
        self.resolved = {"commit": 0, "abort": 0}
        if durability is not None:
            self._recover(durability)

    # -- durability / recovery --------------------------------------------

    def _recover(self, durability: ShardDurability) -> None:
        """Replay this shard's WAL, then reopen it for appending.

        Runs before the serving loop touches the pipe, so by the time
        the supervisor's post-respawn ``ping`` is answered the shard's
        state, applied-table and in-doubt stages are all back.  Replay
        bypasses the fault hooks — recovery must not re-fire the crash
        that caused it (the spent file guarantees that anyway, but
        recovery is also exercised with live fault plans).
        """
        wal_path = durability.wal_path(self.shard_index)
        if os.path.exists(wal_path):
            # Delta against the inherited value: under ``fork`` the
            # child starts with the parent's counter state.
            torn_before = telemetry.counter(TORN_RECORD_COUNTER).value
            records = read_shard_log(wal_path)
            self.torn_wal_records = \
                telemetry.counter(TORN_RECORD_COUNTER).value - torn_before
            self.applied, self.staged = replay_shard_log(self.store,
                                                         records)
            self.recovered_ops = len(self.applied)
            self.recovered_staged = len(self.staged)
        self.wal = ShardWAL(wal_path, sync_every_append=durability.sync)
        self._load_spent(durability.spent_path(self.shard_index))

    def _load_spent(self, spent_path: str) -> None:
        """Crash-fault markers persisted by previous incarnations."""
        if os.path.exists(spent_path):
            with open(spent_path, encoding="utf-8") as handle:
                for line in handle:
                    parts = line.split()
                    if len(parts) != 2 or parts[0] not in _CRASH_KINDS:
                        continue
                    kind, op_key = parts
                    if (kind, op_key) not in self._fault_spent:
                        self._fault_spent.add((kind, op_key))
                        self.crash_fault_counts[kind] += 1
        self._spent_handle = open(spent_path, "a", encoding="utf-8")

    def _spend_crash(self, kind: str, op_key: str) -> bool:
        """Durably mark a crash fault fired; False if already spent.

        The marker must hit the file *before* the process dies, or the
        respawned worker would re-fire the kill on the retried op
        forever.
        """
        if self.wal is None or (kind, op_key) in self._fault_spent:
            return False
        self._fault_spent.add((kind, op_key))
        self.crash_fault_counts[kind] += 1
        self._spent_handle.write(f"{kind} {op_key}\n")
        self._spent_handle.flush()
        os.fsync(self._spent_handle.fileno())
        return True

    @staticmethod
    def _die() -> None:
        """Simulate ``kill -9``: no cleanup, no ack, no flush."""
        os._exit(1)

    # -- chaos ------------------------------------------------------------

    def _maybe_fault(self, op_key: str) -> None:
        """Fire each seeded fault at most once per op key."""
        if self.faults.should_delay(op_key) and \
                ("delay", op_key) not in self._fault_spent:
            self._fault_spent.add(("delay", op_key))
            self.fault_counts["delay"] += 1
            time.sleep(self.faults.delay_seconds)
        if self.faults.should_abort(op_key) and \
                ("abort", op_key) not in self._fault_spent:
            self._fault_spent.add(("abort", op_key))
            self.fault_counts["abort"] += 1
            raise InjectedWorkerAbortError(
                f"injected worker abort on shard {self.shard_index} "
                f"for {op_key[:12]}")

    def _maybe_kill(self, op_key: str, phase: str) -> None:
        if self.faults.should_kill(op_key) and \
                self.faults.kill_phase(op_key) == phase and \
                self._spend_crash("kill", op_key):
            self._die()

    def _maybe_tear(self, op_key: str, act: str, vertices: list,
                    halves: list) -> None:
        if self.faults.should_tear(op_key) and \
                self._spend_crash("torn", op_key):
            self.wal.tear(act, op_key, vertices, halves)
            self._die()

    # -- write path -------------------------------------------------------

    def apply(self, op_key: str, vertices: list, halves: list) -> str:
        """Single-shard commit: WAL, then apply atomically, then ack."""
        if op_key in self.applied:
            self.replayed += 1
            return "replayed"
        self._maybe_fault(op_key)
        self._maybe_kill(op_key, "pre")
        self._maybe_tear(op_key, "apply", vertices, halves)
        if self.wal is not None:
            self.wal.log_apply(op_key, vertices, halves)
        self.store.apply_shard_writes(vertices, halves)
        self.applied[op_key] = True
        self._maybe_kill(op_key, "post")
        return "applied"

    def prepare(self, op_key: str, vertices: list, halves: list) -> str:
        """2PC phase 1: validate and stage; nothing becomes visible."""
        if op_key in self.applied:
            self.replayed += 1
            return "already-applied"
        self._maybe_fault(op_key)
        self._maybe_kill(op_key, "pre")
        self._maybe_tear(op_key, "prepare", vertices, halves)
        self.store.validate_shard_writes(vertices)
        if self.wal is not None:
            self.wal.log_prepare(op_key, vertices, halves)
        self.staged[op_key] = (vertices, halves)
        if self.faults.should_kill_after_prepare(op_key) and \
                self._spend_crash("kill_prepare", op_key):
            # Ack the prepare, then die — the canonical in-doubt
            # window; recovery must resolve by the coordinator log.
            self.exit_after_send = True
        return "prepared"

    def commit(self, op_key: str) -> str:
        """2PC phase 2: apply the staged slice."""
        if op_key in self.applied:
            self.staged.pop(op_key, None)
            self.replayed += 1
            return "replayed"
        vertices, halves = self.staged.pop(op_key)
        if self.wal is not None:
            self.wal.log_mark(op_key, "commit")
        self.store.apply_shard_writes(vertices, halves)
        self.applied[op_key] = True
        return "committed"

    def abort(self, op_key: str) -> str:
        if self.staged.pop(op_key, None) is not None \
                and self.wal is not None:
            self.wal.log_mark(op_key, "abort")
        return "aborted"

    # -- supervised recovery RPCs -----------------------------------------

    def staged_keys(self) -> list[str]:
        return list(self.staged.keys())

    def resolve(self, decisions: dict[str, str]) -> dict[str, int]:
        """Resolve in-doubt stages by the coordinator's decisions.

        Bypasses the fault hooks — resolution is recovery.  Keys with
        no entry in ``decisions`` stay staged (during live recovery the
        owning router thread is still mid-2PC and will decide).
        """
        report = {"commit": 0, "abort": 0, "kept": 0}
        for op_key in list(self.staged.keys()):
            decision = decisions.get(op_key)
            if decision == "commit":
                self.commit(op_key)
                report["commit"] += 1
                self.resolved["commit"] += 1
            elif decision == "abort":
                self.abort(op_key)
                report["abort"] += 1
                self.resolved["abort"] += 1
            else:
                report["kept"] += 1
        return report

    # -- read path --------------------------------------------------------

    def dispatch(self, method: str, args: tuple):
        self.requests += 1
        if method == "apply":
            return self.apply(*args)
        if method == "prepare":
            return self.prepare(*args)
        if method == "commit":
            return self.commit(*args)
        if method == "abort":
            return self.abort(*args)
        if method == "staged_keys":
            return self.staged_keys()
        if method == "resolve":
            return self.resolve(*args)
        if method == "snapshot":
            from ..validation.snapshot import snapshot_store
            return snapshot_store(self.store)
        if method == "busy":
            # CPU-bound spin for the scale-up benchmark: the work runs
            # on this process's own GIL, which is the whole point.
            deadline = time.perf_counter() + args[0]
            while time.perf_counter() < deadline:
                pass
            return None
        if method == "drain_spans":
            drained = list(self.spans)
            self.spans.clear()
            return drained
        if method == "stats":
            faults = dict(self.fault_counts)
            faults.update(self.crash_fault_counts)
            return {
                "pid": os.getpid(),
                "shard": self.shard_index,
                "requests": self.requests,
                "commits": self.store.commit_count,
                "applied": len(self.applied),
                "replayed": self.replayed,
                "staged": len(self.staged),
                "faults": faults,
                "wal_records": (self.wal.records_logged
                                if self.wal is not None else 0),
                "recovered_ops": self.recovered_ops,
                "recovered_staged": self.recovered_staged,
                "resolved": dict(self.resolved),
                "torn_wal_records": self.torn_wal_records,
            }
        if method == "ping":
            return os.getpid()
        return self._read(method, args)

    def _read(self, method: str, args: tuple):
        with self.store.transaction() as txn:
            if method == "vertex":
                return txn.vertex(*args)
            if method == "vertex_many":
                return txn.vertex_many(*args)
            if method == "neighbors":
                return list(txn.neighbors(*args))
            if method == "neighbors_many":
                return txn.neighbors_many(*args)
            if method == "lookup":
                return txn.lookup(*args)
            if method == "scan_range":
                label, prop, low, high, reverse = args
                return list(txn.scan_range(label, prop, low, high,
                                           reverse=reverse))
            if method == "vertices":
                return list(txn.vertices(*args))
            if method == "edges":
                return list(txn.edges(*args))
            if method == "count_vertices":
                return txn.count_vertices(*args)
        raise ValueError(f"unknown shard RPC {method!r}")


def shard_worker_main(conn, load: ShardLoad, faults: ShardFaultPlan,
                      durability: ShardDurability | None = None) -> None:
    """Process entry point: serve requests until ``shutdown``.

    Every request is answered — errors travel back as picklable
    ``(type name, message, transient?)`` surrogates the router re-raises
    onto the taxonomy — and per-request wall-clock spans are buffered
    for the router to stitch onto per-shard telemetry tracks.  Recovery
    (WAL replay) happens inside ``_WorkerState(...)`` before the first
    ``recv``, so a respawned worker is whole before it serves.
    """
    state = _WorkerState(load, faults, durability)
    track = f"shard-{load.shard_index}"
    while True:
        try:
            seq, method, args = conn.recv()
        except (EOFError, OSError):
            break
        if method == "shutdown":
            conn.send((seq, "ok", None))
            break
        started = time.time()
        try:
            payload = state.dispatch(method, args)
        except BaseException as exc:
            status, payload = "err", _encode_error(exc)
        else:
            status = "ok"
        state.spans.append((f"{track}.{method}", started, time.time(),
                            {"shard": load.shard_index, "ok":
                             status == "ok"}))
        try:
            conn.send((seq, status, payload))
        except (BrokenPipeError, OSError):
            break
        if state.exit_after_send:
            state._die()
    conn.close()
