"""The router-side coordinator log for cross-shard 2PC.

The router is the 2PC coordinator, and this log is its durable memory
of every decision: ``begin`` when a cross-shard commit starts,
``commit`` *before* any commit RPC goes out (the commit point), and
``abort`` before the abort RPCs.  Recovery of a crashed shard worker
then resolves its in-doubt stages deterministically:

==================  =====================  ==========================
coordinator log      shard WAL              resolution
==================  =====================  ==========================
``commit`` logged    ``prepare`` staged     roll **forward** (apply)
``abort`` logged     ``prepare`` staged     roll **back** (discard)
no decision (live)   ``prepare`` staged     leave staged — the owning
                                            router thread is mid-2PC
                                            and will decide
no decision (cold)   ``prepare`` staged     presumed **abort**: the
                                            decision is logged before
                                            any commit RPC, so an
                                            undecided op was never
                                            committed anywhere
==================  =====================  ==========================

Because the decision record hits the log before the corresponding RPCs,
a decided op is decided forever — a worker that crashed after acking
prepare learns the outcome from here, never by guessing.

The log is always usable in-memory; give it a path to make decisions
survive router restarts (``--shard-wal-dir``).  The file shares the
torn-tail-tolerant append-log substrate of :mod:`repro.store.wal`.
"""

from __future__ import annotations

import os
import threading

from ..errors import ShardError
from ..store.wal import AppendLog, read_records

#: File name of the coordinator log inside the shard WAL directory.
COORDINATOR_LOG = "coordinator.log"

_TXLOG_KEYS = ("act", "op")


class CoordinatorLog:
    """Durable (optionally) record of every cross-shard 2PC decision."""

    def __init__(self, path: str | os.PathLike | None = None,
                 sync_every_append: bool = False) -> None:
        #: op key → "commit" | "abort"; last decision wins on replay
        #: (a retried op that aborted once and committed later must
        #: resolve commit).
        self._decisions: dict[str, str] = {}
        self._begun: dict[str, list[int]] = {}
        self._lock = threading.Lock()
        self._log: AppendLog | None = None
        if path is not None:
            path = os.fspath(path)
            if os.path.exists(path):
                for record in read_records(path, _TXLOG_KEYS):
                    self._replay(record)
            self._log = AppendLog(path,
                                  sync_every_append=sync_every_append)

    def _replay(self, record: dict) -> None:
        act, op_key = record["act"], record["op"]
        if act == "begin":
            self._begun[op_key] = list(record.get("shards", []))
        elif act in ("commit", "abort"):
            self._decisions[op_key] = act
        else:
            raise ShardError(f"unknown coordinator-log act {act!r}")

    @property
    def path(self) -> str | None:
        return self._log.path if self._log is not None else None

    @property
    def durable(self) -> bool:
        return self._log is not None

    def _append(self, record: dict) -> None:
        if self._log is not None:
            self._log.append(record)

    # -- the 2PC protocol hooks (called by the router) ---------------------

    def log_begin(self, op_key: str, shards: list[int]) -> None:
        with self._lock:
            self._begun[op_key] = list(shards)
            # A re-run of an op that aborted before is a fresh attempt:
            # clear the stale abort so the new outcome decides it.
            if self._decisions.get(op_key) == "abort":
                del self._decisions[op_key]
            self._append({"act": "begin", "op": op_key,
                          "shards": list(shards)})

    def log_commit(self, op_key: str) -> None:
        """THE commit point — must be called before any commit RPC."""
        with self._lock:
            self._decisions[op_key] = "commit"
            self._append({"act": "commit", "op": op_key})

    def log_abort(self, op_key: str) -> None:
        with self._lock:
            self._decisions[op_key] = "abort"
            self._append({"act": "abort", "op": op_key})

    # -- recovery queries --------------------------------------------------

    def decision(self, op_key: str) -> str | None:
        """``"commit"``, ``"abort"``, or ``None`` while undecided."""
        with self._lock:
            return self._decisions.get(op_key)

    def in_doubt(self) -> list[str]:
        """Ops begun but never decided (interesting on cold restart)."""
        with self._lock:
            return [op for op in self._begun
                    if op not in self._decisions]

    def stats(self) -> dict:
        with self._lock:
            commits = sum(1 for act in self._decisions.values()
                          if act == "commit")
            return {
                "begun": len(self._begun),
                "committed": commits,
                "aborted": len(self._decisions) - commits,
                "durable": self.durable,
            }

    def close(self) -> None:
        if self._log is not None:
            self._log.close()
