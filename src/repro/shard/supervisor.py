"""Supervised recovery of crashed shard workers.

A dead worker pipe used to be the end of the run (fatal
:class:`~repro.errors.ShardConnectionError`).  With a shard WAL
directory configured, the router hands the failure to this supervisor
instead, which turns a ``kill -9`` into a bounded, observable episode:

1. **detect** — the failed :class:`~repro.shard.router.ShardHandle`
   arrives with the cause;
2. **respawn** — a new worker process for the same shard slice; its
   ``__init__`` bulk-loads and replays the shard WAL before serving, so
   the acked state, the exactly-once applied-table, and the in-doubt
   2PC stages are all back;
3. **resolve** — the staged op keys the worker reports are matched
   against the coordinator log; decided ops roll forward/back, the
   undecided ones stay staged for their still-live router thread;
4. **re-issue** — the request that hit the dead pipe is retried on the
   new worker (through the supervised path, so a worker that dies
   again recovers again, up to the budget).

Concurrency: one recovery at a time per shard (a non-blocking
per-shard lock).  A caller that loses the race does not queue behind
the respawn — it raises :class:`~repro.errors.ShardRecoveringError`,
which is *transient*, so the driver's retry policy backs off and
retries exactly as it would for any other transient failure.  The
``max_restarts`` budget bounds the whole run; when it is exhausted the
supervisor degrades to the original fatal error (with the shard/op
payload), which is what trips PR 4's circuit breaker.

Telemetry: ``shard.supervisor.restarts`` counts respawns and a
``shard.supervisor.recover`` span brackets each recovery episode;
:meth:`WorkerSupervisor.stats` reports restarts per shard and the
recovery-time distribution the bench quotes as p50/p95.
"""

from __future__ import annotations

import threading
import time

from .. import telemetry
from ..errors import ShardConnectionError, ShardRecoveringError
from .routing import ShardLoad
from .worker import ShardDurability, ShardFaultPlan, shard_worker_main

#: Telemetry counter: one increment per worker respawn.
RESTART_COUNTER = "shard.supervisor.restarts"

#: Span name bracketing one recovery episode (respawn → resolved).
RECOVER_SPAN = "shard.supervisor.recover"


class WorkerSupervisor:
    """Respawns dead shard workers and replays them back to health."""

    def __init__(self, router, loads: list[ShardLoad], context,
                 faults: ShardFaultPlan,
                 durability: ShardDurability,
                 max_restarts: int = 8) -> None:
        self.router = router
        self.loads = {load.shard_index: load for load in loads}
        self.context = context
        self.faults = faults
        self.durability = durability
        self.max_restarts = max_restarts
        self.restarts_by_shard: dict[int, int] = {
            load.shard_index: 0 for load in loads}
        self.recovery_seconds: list[float] = []
        self._recovery_locks = {
            load.shard_index: threading.Lock() for load in loads}
        self._counter_lock = threading.Lock()

    @property
    def restarts(self) -> int:
        with self._counter_lock:
            return sum(self.restarts_by_shard.values())

    # -- the supervised failure path --------------------------------------

    def recover_and_reissue(self, handle, method: str, args: tuple,
                            timeout: float, *, op_key: str | None,
                            cause: ShardConnectionError,
                            observed_gen: int):
        """Bring the shard back, then retry the failed request on it.

        ``observed_gen`` is the handle generation the caller saw before
        its call: if another thread already respawned the worker (the
        generation moved), the respawn is skipped and the request goes
        straight to the new incarnation.
        """
        lock = self._recovery_locks[handle.index]
        if not lock.acquire(blocking=False):
            # Someone else is mid-recovery on this shard; don't queue
            # behind a multi-second respawn — fail transient and let
            # the driver's backoff absorb the wait.
            raise ShardRecoveringError(
                f"shard {handle.index} recovery in progress",
                shard_index=handle.index) from cause
        try:
            if handle.generation == observed_gen:
                while True:
                    try:
                        self._respawn(handle, cause)
                        break
                    except ShardConnectionError as died_again:
                        # The *respawned* worker died during its own
                        # recovery RPCs — respawn again, against the
                        # same budget (whose exhaustion is final).
                        if getattr(died_again, "budget_exhausted",
                                   False):
                            raise
                        cause = died_again
        finally:
            lock.release()
        return self.router._call_handle(handle, method, args, timeout,
                                        op_key=op_key)

    # -- respawn + replay + resolve ----------------------------------------

    def _respawn(self, handle, cause: ShardConnectionError) -> None:
        with self._counter_lock:
            if sum(self.restarts_by_shard.values()) >= self.max_restarts:
                exhausted = ShardConnectionError(
                    f"shard {handle.index} worker died and the "
                    f"supervisor restart budget "
                    f"({self.max_restarts}) is exhausted",
                    shard_index=handle.index, op_key=cause.op_key,
                    pending=handle.pending)
                exhausted.budget_exhausted = True
                raise exhausted from cause
            self.restarts_by_shard[handle.index] += 1
        started = time.monotonic()
        wall_start = time.time()
        telemetry.counter(RESTART_COUNTER).inc()
        load = self.loads[handle.index]
        parent_conn, child_conn = self.context.Pipe(duplex=True)
        process = self.context.Process(
            target=shard_worker_main,
            args=(child_conn, load, self.faults, self.durability),
            name=f"repro-shard-{handle.index}-r"
                 f"{self.restarts_by_shard[handle.index]}",
            daemon=True)
        process.start()
        child_conn.close()
        old_process, old_conn = handle.process, handle.conn
        # Swap the endpoint under the handle lock so no caller ever
        # mixes the two pipes; the recovery RPCs below then go through
        # the normal serialized call path on the new pipe.
        with handle.lock:
            handle.process = process
            handle.conn = parent_conn
            handle.generation += 1
            handle._stale.clear()
            handle._seq = 0
        try:
            old_conn.close()
        except OSError:
            pass
        if old_process.is_alive():
            old_process.terminate()
        control = self.router._control_timeout
        handle.call("ping", (), control)
        staged = handle.call("staged_keys", (), control)
        decisions = {}
        for key in staged:
            decision = self.router.txlog.decision(key)
            if decision is not None:
                decisions[key] = decision
        resolution = {"commit": 0, "abort": 0, "kept": len(staged)}
        if decisions:
            resolution = handle.call("resolve", (decisions,), control)
        elapsed = time.monotonic() - started
        with self._counter_lock:
            self.recovery_seconds.append(elapsed)
        telemetry.add_span(
            RECOVER_SPAN, wall_start, wall_start + elapsed,
            shard=handle.index, generation=handle.generation,
            staged=len(staged), rolled_forward=resolution["commit"],
            rolled_back=resolution["abort"])

    # -- observability -----------------------------------------------------

    def stats(self) -> dict:
        with self._counter_lock:
            seconds = list(self.recovery_seconds)
            by_shard = dict(self.restarts_by_shard)
        report = {
            "restarts": sum(by_shard.values()),
            "max_restarts": self.max_restarts,
            "restarts_by_shard": by_shard,
        }
        if seconds:
            report["recovery_p50_ms"] = round(
                telemetry.percentile(seconds, 0.50) * 1000.0, 3)
            report["recovery_p95_ms"] = round(
                telemetry.percentile(seconds, 0.95) * 1000.0, 3)
        return report
