"""The shard router: one process orchestrating N worker shards.

The router owns one duplex pipe per worker, guarded by a per-shard
lock, and exposes three things:

* a **read transaction** (:class:`ShardedTransaction`) implementing the
  whole :class:`repro.store.graph.Transaction` read API, so every SNB
  query — all 14 complex reads and 7 short reads — runs against the
  sharded store *unchanged*.  Point reads dispatch straight to the
  owning shard; the batched 2-hop primitives (``neighbors_many``,
  ``vertex_many``) scatter one request per involved shard and merge the
  partial adjacency/property maps the workers aggregate locally;
  whole-label scans (``vertices``/``edges``/``lookup``/``scan_range``)
  scatter-gather across all shards.
* an **update commit**: the update's insert logic runs router-side
  against a write recorder; the recorded write-set is partitioned by
  the placement rules and applied under a router-held commit epoch —
  directly when one shard is involved, two-phase (prepare everywhere,
  then commit everywhere) when the write-set straddles shards, e.g. a
  friendship between persons on different shards.  Every write carries
  a stable op key so worker applies are exactly-once across retries.
* the **merged canonical snapshot**: per-shard snapshots concatenated
  section-wise and re-sorted by canonical JSON — byte-identical to the
  single-process snapshot by the placement invariant, which is what
  lets every digest oracle in the repo (crosscheck, chaos, golden)
  judge the sharded store with no new machinery.

Failure taxonomy at the pipe boundary mirrors the wire protocol: a
worker exception travels back by name and re-raises as its original
:mod:`repro.errors` class; a response missing its deadline raises
:class:`~repro.errors.ShardTimeoutError` (transient — the serial worker
plus the op-key table make the retry safe); a dead worker raises
:class:`~repro.errors.ShardConnectionError` (fatal).
"""

from __future__ import annotations

import hashlib
import multiprocessing
import os
import threading
import time
from typing import Any, Iterator

from .. import errors as _errors
from .. import telemetry
from ..datagen.update_stream import UpdateOperation
from ..errors import (
    DuplicateError,
    FatalSUTError,
    NotFoundError,
    ShardConnectionError,
    ShardError,
    ShardTimeoutError,
    TransientError,
)
from ..queries.updates import executor_for
from ..store.graph import Direction
from .routing import (
    ShardWrites,
    is_static,
    owner_of,
    partition_bulk,
    partition_writes,
)
from .txlog import COORDINATOR_LOG, CoordinatorLog
from .worker import ShardDurability, ShardFaultPlan, shard_worker_main

#: Mutation-canary hook (see :mod:`repro.validation.canary`): when set
#: to a shard index, scatter-gather reads silently drop that shard's
#: partial results — a seeded routing bug the validation harness must
#: catch via golden reads / checkpoint digests.
_canary_drop_shard: int | None = None


def default_start_method() -> str:
    """``fork`` when the platform offers it (worker startup is ~free),
    else ``spawn``.  The worker code itself is spawn-safe either way —
    CI and the test suite exercise ``spawn`` explicitly."""
    return "fork" if "fork" in multiprocessing.get_all_start_methods() \
        else "spawn"


def stable_update_key(operation: UpdateOperation) -> str:
    """Deterministic identity of one update across driver retries.

    Mirrors the wire client's stable op key: derived from the
    operation's own fields (kind, due time, frozen payload repr), never
    from object identity, so a retried attempt hashes identically and
    the workers' applied-tables can deduplicate it.
    """
    body = (f"{operation.kind.value}:{operation.due_time}:"
            f"{operation.payload!r}")
    return hashlib.sha1(body.encode()).hexdigest()


def _decode_error(payload: tuple[str, str, bool]) -> BaseException:
    """Re-raise a worker error surrogate as its taxonomy class."""
    name, message, transient = payload
    cls = getattr(_errors, name, None)
    if isinstance(cls, type) and issubclass(cls, BaseException):
        return cls(message)
    if name == "InjectedWorkerAbortError":
        from .worker import InjectedWorkerAbortError
        return InjectedWorkerAbortError(message)
    if transient:
        return TransientError(f"shard worker {name}: {message}")
    return FatalSUTError(f"shard worker {name}: {message}")


class ShardHandle:
    """Router-side endpoint of one worker: pipe + lock + sequencing.

    One outstanding request per shard (the lock); the worker answers in
    request order, so a timed-out sequence number is remembered and its
    late response drained before any later reply is interpreted.

    ``generation`` counts worker incarnations: the supervisor bumps it
    when it swaps in a respawned process, which is how a failed caller
    distinguishes "my worker is still dead" from "someone already
    recovered it".  ``pending`` counts requests currently queued or in
    flight on this shard — part of the dead-worker error payload.
    """

    def __init__(self, index: int, process, conn) -> None:
        self.index = index
        self.process = process
        self.conn = conn
        self.lock = threading.Lock()
        self._seq = 0
        self._stale: set[int] = set()
        self.timeouts = 0
        self.generation = 0
        self.pending = 0

    def call(self, method: str, args: tuple, timeout: float,
             op_key: str | None = None):
        self.pending += 1
        try:
            return self._call(method, args, timeout, op_key)
        finally:
            self.pending -= 1

    def _call(self, method: str, args: tuple, timeout: float,
              op_key: str | None):
        with self.lock:
            self._seq += 1
            seq = self._seq
            try:
                self.conn.send((seq, method, args))
            except (BrokenPipeError, OSError) as exc:
                raise ShardConnectionError(
                    f"shard worker pipe closed on send ({method})",
                    shard_index=self.index, op_key=op_key,
                    pending=self.pending) from exc
            deadline = time.monotonic() + timeout
            while True:
                remaining = deadline - time.monotonic()
                if remaining <= 0 or not self.conn.poll(remaining):
                    self._stale.add(seq)
                    self.timeouts += 1
                    raise ShardTimeoutError(
                        f"shard {self.index} did not answer {method} "
                        f"within {timeout:.3f}s")
                try:
                    got_seq, status, payload = self.conn.recv()
                except (EOFError, OSError) as exc:
                    raise ShardConnectionError(
                        f"shard worker died during {method} "
                        f"(pid {self.process.pid})",
                        shard_index=self.index, op_key=op_key,
                        pending=self.pending) from exc
                if got_seq != seq:
                    # A late answer to an abandoned (timed-out) request;
                    # the worker is serial, so these always precede ours.
                    self._stale.discard(got_seq)
                    continue
                if status == "ok":
                    return payload
                raise _decode_error(payload)


class ShardRouter:
    """Process/pipe management plus the read and commit protocols."""

    def __init__(self, handles: list[ShardHandle],
                 request_timeout: float = 30.0,
                 txlog: CoordinatorLog | None = None) -> None:
        self.handles = handles
        self.num_shards = len(handles)
        self.request_timeout = request_timeout
        #: Router-held commit epoch: all update commits serialize here,
        #: which is what makes the two-phase window (prepare on some
        #: shards, not yet committed on others) invisible to every
        #: other writer.
        self._commit_lock = threading.Lock()
        self._epoch = 0
        self._closed = False
        self._updates = 0
        self._multi_shard_updates = 0
        self._gather_pool = None
        self._pool_lock = threading.Lock()
        #: Coordinator decision log; always present (in-memory when no
        #: WAL directory), durable when the run has one.
        self.txlog = txlog or CoordinatorLog()
        #: Installed by :meth:`spawn` when durability is configured;
        #: ``None`` means a dead worker stays fatal (the pre-recovery
        #: behaviour).
        self.supervisor = None

    # -- construction ------------------------------------------------------

    @classmethod
    def spawn(cls, network, num_shards: int, *,
              faults: ShardFaultPlan | None = None,
              request_timeout: float = 30.0,
              start_method: str | None = None,
              wal_dir: str | os.PathLike | None = None,
              sync_wal: bool = False,
              max_restarts: int = 8) -> "ShardRouter":
        """Partition a bulk network and spawn one worker per shard.

        With ``wal_dir`` the run is crash-tolerant: each worker keeps a
        WAL there, the router keeps its 2PC coordinator log there, and
        a :class:`~repro.shard.supervisor.WorkerSupervisor` (budgeted
        by ``max_restarts``) respawns dead workers.  Spawning into a
        directory that already holds WALs is a *cold restart*: workers
        replay their logs and in-doubt 2PC stages resolve by the
        coordinator log (presumed abort when undecided).
        """
        if num_shards < 1:
            raise ShardError(f"num_shards must be >= 1, got {num_shards}")
        context = multiprocessing.get_context(
            start_method or default_start_method())
        faults = faults or ShardFaultPlan()
        durability = None
        if wal_dir is not None:
            os.makedirs(wal_dir, exist_ok=True)
            durability = ShardDurability(os.fspath(wal_dir),
                                         sync=sync_wal)
        elif faults.has_crash_faults:
            raise ShardError(
                "crash faults (kill/torn rates) require a shard WAL "
                "directory — killing a WAL-less worker loses "
                "acknowledged state by construction")
        loads = partition_bulk(network, num_shards)
        handles: list[ShardHandle] = []
        try:
            for load in loads:
                parent_conn, child_conn = context.Pipe(duplex=True)
                process = context.Process(
                    target=shard_worker_main,
                    args=(child_conn, load, faults, durability),
                    name=f"repro-shard-{load.shard_index}",
                    daemon=True)
                process.start()
                child_conn.close()
                handles.append(ShardHandle(load.shard_index, process,
                                           parent_conn))
            txlog = CoordinatorLog(
                os.path.join(durability.wal_dir, COORDINATOR_LOG)
                if durability is not None else None,
                sync_every_append=sync_wal)
            router = cls(handles, request_timeout=request_timeout,
                         txlog=txlog)
            # Liveness probe: a worker that failed to import/load must
            # surface here, not as a hang on the first real operation.
            for handle in handles:
                handle.call("ping", (), timeout=max(request_timeout, 30.0))
            if durability is not None:
                from .supervisor import WorkerSupervisor
                router.supervisor = WorkerSupervisor(
                    router, loads, context, faults, durability,
                    max_restarts=max_restarts)
                router._resolve_cold_restart()
            return router
        except BaseException:
            for handle in handles:
                if handle.process.is_alive():
                    handle.process.terminate()
            raise

    def _resolve_cold_restart(self) -> None:
        """Settle in-doubt 2PC stages replayed from pre-existing WALs.

        Cold restart means no router thread is mid-commit, so every
        undecided stage is *presumed abort*: the coordinator logs its
        decision before sending any commit RPC, so an op with no
        logged decision was never committed anywhere.
        """
        control = self._control_timeout
        for handle in self.handles:
            staged = handle.call("staged_keys", (), control)
            if not staged:
                continue
            decisions = {
                key: (self.txlog.decision(key) or "abort")
                for key in staged}
            handle.call("resolve", (decisions,), control)

    # -- plumbing ----------------------------------------------------------

    def _call_handle(self, handle: ShardHandle, method: str, args: tuple,
                     timeout: float, op_key: str | None = None):
        """One supervised RPC: a dead worker triggers recovery + retry.

        Every data-plane RPC funnels through here.  Without a
        supervisor (no WAL directory) the dead-worker error propagates
        fatal exactly as before.
        """
        generation = handle.generation
        try:
            return handle.call(method, args, timeout, op_key=op_key)
        except ShardConnectionError as exc:
            if self.supervisor is None or self._closed:
                raise
            return self.supervisor.recover_and_reissue(
                handle, method, args, timeout, op_key=op_key,
                cause=exc, observed_gen=generation)

    def call(self, shard: int, method: str, *args,
             op_key: str | None = None):
        """One RPC to one shard."""
        return self._call_handle(self.handles[shard], method, args,
                                 self.request_timeout, op_key=op_key)

    def _pool(self):
        with self._pool_lock:
            if self._gather_pool is None:
                from concurrent.futures import ThreadPoolExecutor
                self._gather_pool = ThreadPoolExecutor(
                    max_workers=max(4, 2 * self.num_shards),
                    thread_name_prefix="shard-gather")
            return self._gather_pool

    @property
    def _control_timeout(self) -> float:
        """Floor for control-plane RPCs (snapshot, stats, shutdown).

        Chaos soaks shrink ``request_timeout`` far below a full-shard
        snapshot's cost to force data-plane timeouts; the control plane
        must not inherit that.
        """
        return max(self.request_timeout, 30.0)

    def gather(self, method: str, *args, timeout: float | None = None,
               ) -> list:
        """The same RPC on every shard; per-shard results in index order.

        Fans out on threads (each blocks in ``poll``/``recv`` with the
        GIL released) so worker-side partial aggregation genuinely runs
        in parallel.
        """
        timeout = self.request_timeout if timeout is None else timeout
        targets = [h for h in self.handles
                   if h.index != _canary_drop_shard]
        if len(targets) == 1:
            return [self._call_handle(targets[0], method, args, timeout)]
        futures = [self._pool().submit(self._call_handle, h, method,
                                       args, timeout)
                   for h in targets]
        return [future.result() for future in futures]

    def call_many(self, per_shard: dict[int, tuple]) -> dict[int, Any]:
        """Different arguments per shard, one fan-out; shard → result."""
        items = [(shard, args) for shard, args in per_shard.items()
                 if shard != _canary_drop_shard]
        if len(items) == 1:
            shard, (method, *args) = items[0]
            return {shard: self.call(shard, method, *args)}
        futures = {
            shard: self._pool().submit(
                self._call_handle, self.handles[shard], args[0],
                tuple(args[1:]), self.request_timeout)
            for shard, args in items}
        return {shard: future.result()
                for shard, future in futures.items()}

    # -- reads -------------------------------------------------------------

    def transaction(self) -> "ShardedTransaction":
        return ShardedTransaction(self)

    # -- updates -----------------------------------------------------------

    def execute_update(self, operation: UpdateOperation) -> None:
        """Route one SNB update through the sharded commit protocol."""
        from ..driver.resilience import raise_if_abandoned

        raise_if_abandoned()
        executor = executor_for(operation.kind)
        recorder = _WriteRecorder()
        executor(recorder, operation.payload)
        per_shard = partition_writes(recorder.new_vertices,
                                     recorder.new_edges, self.num_shards)
        involved = sorted(shard for shard, writes in per_shard.items()
                          if writes)
        if not involved:
            return
        op_key = stable_update_key(operation)
        with self._commit_lock:
            self._epoch += 1
            self._updates += 1
            if len(involved) == 1:
                shard = involved[0]
                writes = per_shard[shard]
                self.call(shard, "apply", op_key, writes.vertices,
                          writes.halves, op_key=op_key)
                return
            self._multi_shard_updates += 1
            self._two_phase(op_key, involved, per_shard)

    def _two_phase(self, op_key: str, involved: list[int],
                   per_shard: dict[int, ShardWrites]) -> None:
        """Prepare everywhere, log the decision, then send it.

        A prepare failure (duplicate, injected abort, timeout) logs
        **abort**, aborts the already-staged shards and re-raises;
        since nothing was applied, the retry starts clean.  On success
        the coordinator logs **commit** *before* the first commit RPC —
        that append is the commit point: a worker that dies holding a
        prepared stage rolls forward iff that record exists.  Commits
        cannot fail semantically (validation happened at prepare and
        the epoch lock excludes other writers); a commit *timeout*
        still applies worker-side, and the retry's prepares then land
        in the applied-table and replay as successes.
        """
        self.txlog.log_begin(op_key, involved)
        prepared: list[int] = []
        try:
            for shard in involved:
                writes = per_shard[shard]
                self.call(shard, "prepare", op_key, writes.vertices,
                          writes.halves, op_key=op_key)
                prepared.append(shard)
        except BaseException:
            self.txlog.log_abort(op_key)
            for shard in prepared:
                try:
                    self.call(shard, "abort", op_key, op_key=op_key)
                except ShardError:
                    pass
            raise
        self.txlog.log_commit(op_key)
        for shard in involved:
            self.call(shard, "commit", op_key, op_key=op_key)

    # -- snapshot / digest -------------------------------------------------

    def snapshot(self) -> dict[str, list[dict]]:
        """Canonical whole-graph snapshot, merged across shards."""
        from ..validation.canonical import canonical_json

        parts = self.gather("snapshot", timeout=self._control_timeout)
        merged: dict[str, list[dict]] = {}
        for section in parts[0]:
            rows: list[dict] = []
            for part in parts:
                rows.extend(part[section])
            merged[section] = sorted(rows, key=canonical_json)
        return merged

    def digest(self) -> str:
        from ..validation.snapshot import snapshot_digest

        return snapshot_digest(self.snapshot())

    # -- lifecycle ---------------------------------------------------------

    def stats(self) -> dict:
        """Router counters plus each worker's own counters."""
        shards = []
        for handle in self.handles:
            try:
                worker = handle.call("stats", (), self._control_timeout)
            except ShardError:
                worker = {"shard": handle.index, "dead": True}
            worker["router_timeouts"] = handle.timeouts
            shards.append(worker)
        report = {
            "num_shards": self.num_shards,
            "updates": self._updates,
            "multi_shard_updates": self._multi_shard_updates,
            "epoch": self._epoch,
            "coordinator": self.txlog.stats(),
            "shards": shards,
        }
        if self.supervisor is not None:
            report["supervisor"] = self.supervisor.stats()
        return report

    def close(self) -> None:
        """Drain spans, stop workers; idempotent."""
        if self._closed:
            return
        self._closed = True
        clock_offset = time.perf_counter() - time.time()
        for handle in self.handles:
            try:
                if telemetry.active:
                    spans = handle.call("drain_spans", (),
                                        min(self._control_timeout, 5.0))
                    pid = handle.process.pid
                    for name, wall_start, wall_end, attrs in spans:
                        telemetry.add_span(
                            name, wall_start + clock_offset,
                            wall_end + clock_offset, thread_id=pid,
                            thread_name=f"shard-{handle.index}-{pid}",
                            **attrs)
                handle.call("shutdown", (),
                            min(self._control_timeout, 5.0))
            except ShardError:
                pass
            handle.process.join(timeout=5.0)
            if handle.process.is_alive():
                handle.process.terminate()
                handle.process.join(timeout=2.0)
            handle.conn.close()
        if self._gather_pool is not None:
            self._gather_pool.shutdown(wait=False)
        self.txlog.close()


class _WriteRecorder:
    """Write-API stand-in for a Transaction while building a write-set.

    The SNB-Interactive update workload is insert-only, so only the
    insert methods are implemented; the recorded shapes are exactly a
    Transaction's ``new_vertices``/``new_edges``.
    """

    def __init__(self) -> None:
        self.new_vertices: dict[tuple[str, int], dict] = {}
        self.new_edges: list[tuple[str, int, int, dict | None]] = []

    def insert_vertex(self, label: str, vid: int, props: dict) -> None:
        key = (label, vid)
        if key in self.new_vertices:
            raise DuplicateError(f"{label}:{vid} inserted twice in txn")
        self.new_vertices[key] = props

    def insert_edge(self, label: str, src: int, dst: int,
                    props: dict | None = None) -> None:
        self.new_edges.append((label, src, dst, props))

    def insert_undirected_edge(self, label: str, a: int, b: int,
                               props: dict | None = None) -> None:
        self.insert_edge(label, a, b, props)
        self.insert_edge(label, b, a, props)

    def update_vertex(self, label: str, vid: int, **changes) -> None:
        raise ShardError(
            "the sharded store routes insert-only SNB updates; "
            f"in-place update of {label}:{vid} is not supported")


class ShardedTransaction:
    """Read-only Transaction facade over the router.

    Implements every read primitive of
    :class:`repro.store.graph.Transaction`, so the whole query registry
    runs unmodified.  Each primitive reads at the owning workers'
    current committed snapshots; under the sequential validation modes
    (crosscheck, differential, golden) that is exactly the single-store
    semantics.  Writes go through :meth:`ShardRouter.execute_update`,
    never through this facade.
    """

    def __init__(self, router: ShardRouter) -> None:
        self.router = router

    # Context-manager protocol so ``with sut.router.transaction()``
    # reads exactly like the single-store code path.
    def __enter__(self) -> "ShardedTransaction":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None

    # -- point reads -------------------------------------------------------

    def _owner(self, vid: int) -> int:
        return owner_of(vid, self.router.num_shards)

    def vertex(self, label: str, vid: int) -> dict | None:
        return self.router.call(self._owner(vid), "vertex", label, vid)

    def require_vertex(self, label: str, vid: int) -> dict:
        props = self.vertex(label, vid)
        if props is None:
            raise NotFoundError(f"{label}:{vid} not visible")
        return props

    def vertex_exists(self, label: str, vid: int) -> bool:
        return self.vertex(label, vid) is not None

    def neighbors(self, edge_label: str, vid: int,
                  direction: Direction = Direction.OUT,
                  ) -> list[tuple[int, dict | None]]:
        if not is_static(vid):
            return self.router.call(self._owner(vid), "neighbors",
                                    edge_label, vid, direction)
        # Static anchor: its halves follow the non-static endpoints,
        # which may live anywhere — scatter-gather and concatenate.
        merged: list[tuple[int, dict | None]] = []
        for part in self.router.gather("neighbors", edge_label, vid,
                                       direction):
            merged.extend(part)
        return merged

    def degree(self, edge_label: str, vid: int,
               direction: Direction = Direction.OUT) -> int:
        return len(self.neighbors(edge_label, vid, direction))

    # -- batched 2-hop primitives (per-shard partial aggregation) ---------

    def vertex_many(self, label: str, vids) -> dict[int, dict]:
        per_shard: dict[int, list[int]] = {}
        for vid in vids:
            per_shard.setdefault(self._owner(vid), []).append(vid)
        if not per_shard:
            return {}
        results = self.router.call_many({
            shard: ("vertex_many", label, group)
            for shard, group in per_shard.items()})
        merged: dict[int, dict] = {}
        for part in results.values():
            merged.update(part)
        return merged

    def neighbors_many(self, edge_label: str, vids,
                       direction: Direction = Direction.OUT,
                       ) -> dict[int, list[tuple[int, dict | None]]]:
        """One scatter per involved shard; workers aggregate their
        owned slice of the batch locally and the router merges the
        partial adjacency maps — the Q5 / ``friends_within`` path."""
        static: list[int] = []
        per_shard: dict[int, list[int]] = {}
        for vid in vids:
            if is_static(vid):
                static.append(vid)
            else:
                per_shard.setdefault(self._owner(vid), []).append(vid)
        merged: dict[int, list[tuple[int, dict | None]]] = {}
        if per_shard:
            results = self.router.call_many({
                shard: ("neighbors_many", edge_label, group, direction)
                for shard, group in per_shard.items()})
            for part in results.values():
                merged.update(part)
        for vid in static:
            merged[vid] = self.neighbors(edge_label, vid, direction)
        return merged

    # -- scans -------------------------------------------------------------

    def lookup(self, vertex_label: str, prop: str, value) -> list[int]:
        found: list[int] = []
        for part in self.router.gather("lookup", vertex_label, prop,
                                       value):
            found.extend(part)
        return found

    def scan_range(self, vertex_label: str, prop: str, low=None,
                   high=None, *, reverse: bool = False,
                   ) -> Iterator[tuple[Any, int]]:
        import heapq

        parts = self.router.gather("scan_range", vertex_label, prop,
                                   low, high, reverse)
        # Each shard's index yields (key, vid) already key-ordered;
        # a k-way merge on the key keeps the global key order (ties
        # resolve in shard order, which every consumer re-sorts past).
        yield from heapq.merge(
            *parts, key=lambda pair: pair[0], reverse=reverse)

    def vertices(self, label: str) -> Iterator[tuple[int, dict]]:
        for part in self.router.gather("vertices", label):
            yield from part

    def edges(self, edge_label: str,
              ) -> Iterator[tuple[int, int, dict | None]]:
        for part in self.router.gather("edges", edge_label):
            yield from part

    def count_vertices(self, label: str) -> int:
        return sum(self.router.gather("count_vertices", label))
