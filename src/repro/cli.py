"""Command-line interface: ``python -m repro <command>``.

Subcommands:

* ``generate`` — run DATAGEN, print Table 3-style statistics, and
  optionally export CSV bulk files;
* ``validate`` — load a CSV export and run the integrity validator, or
  (``--create`` / ``--check``) record and replay golden validation
  datasets against either SUT;
* ``benchmark`` — run the full SNB-Interactive benchmark on a SUT and
  print the full-disclosure report;
* ``explain`` — show the optimizer's plan for the Figure 4 query (Q9);
* ``curate`` — print curated parameter bindings for one query template;
* ``crosscheck`` — validate the two SUTs against each other
  (``--updates`` replays the update stream with interleaved reads and
  state checkpoints);
* ``chaos`` — run the update workload under a seeded fault plan
  (transient aborts, latency spikes, hangs, MVCC write conflicts) and
  assert the perturbed run converges to the fault-free state digest;
* ``serve`` — bulk-load a SUT and front it with the wire-protocol
  server, so ``benchmark --remote`` / ``chaos --remote`` drive it from
  another process over TCP.
"""

from __future__ import annotations

import argparse
import os
import sys

from . import __version__, telemetry
from .datagen import DatagenConfig, ParallelConfig, generate
from .datagen.serializer import read_csv, write_csv
from .datagen.stats import DatasetStatistics
from .schema import validate_network


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="LDBC SNB Interactive reproduction (SIGMOD 2015)")
    parser.add_argument("--version", action="version",
                        version=f"repro {__version__}")
    commands = parser.add_subparsers(dest="command", required=True)

    gen = commands.add_parser("generate", help="run DATAGEN")
    gen.add_argument("--persons", type=int, default=300)
    gen.add_argument("--scale-factor", type=float, default=None,
                     help="derive the person count from a scale factor")
    gen.add_argument("--seed", type=int, default=42)
    gen.add_argument("--out", default=None,
                     help="directory for CSV bulk export")
    gen.add_argument("--no-events", action="store_true",
                     help="disable event-driven post spikes")
    gen.add_argument("--jobs", type=int, default=1,
                     help="worker processes for generation (output is "
                          "identical for any value; default 1 = serial)")
    _add_trace_flag(gen)

    val = commands.add_parser(
        "validate",
        help="validate a CSV export, or create/check a golden "
             "validation dataset")
    val.add_argument("directory", nargs="?", default=None,
                     help="CSV export directory (integrity mode)")
    val.add_argument("--create", metavar="PATH", default=None,
                     help="record a golden validation dataset "
                          "(JSONL) from the reference SUT")
    val.add_argument("--check", metavar="PATH", default=None,
                     help="replay a golden dataset against a SUT "
                          "and diff every expectation")
    val.add_argument("--sut",
                     choices=("store", "engine", "sharded", "both"),
                     default="both",
                     help="which SUT --check replays (default both; "
                          "'sharded' replays against the multi-process "
                          "sharded store)")
    val.add_argument("--shards", type=int, default=2,
                     help="--check --sut sharded: worker process count")
    val.add_argument("--persons", type=int, default=80,
                     help="--create: datagen person count")
    val.add_argument("--seed", type=int, default=7,
                     help="--create: datagen seed")
    val.add_argument("-k", type=int, default=2,
                     help="--create: bindings per query template")
    val.add_argument("--batch", type=int, default=100,
                     help="--create: updates per batch")
    val.add_argument("--canary", action="store_true",
                     help="--check: seed a known query bug and "
                          "require the check to FAIL (exit 0 iff the "
                          "harness caught it)")
    val.add_argument("--canary-faults", action="store_true",
                     help="--check: run the chaos soak with retry "
                          "classification disabled and require it to "
                          "FAIL (exit 0 iff the fault injector fired "
                          "and the soak caught the broken run)")
    val.add_argument("--replay-out", metavar="PATH", default=None,
                     help="--check: write the (shrunk) replay bundle "
                          "of the first mismatch here")
    val.add_argument("--jobs", type=int, default=1,
                     help="--check: worker processes for regenerating "
                          "the network (a parallel run must match the "
                          "golden dataset byte for byte)")

    bench = commands.add_parser("benchmark",
                                help="run the interactive benchmark")
    bench.add_argument("--persons", type=int, default=200)
    bench.add_argument("--seed", type=int, default=42)
    bench.add_argument("--sut", choices=("store", "engine"),
                       default="store")
    bench.add_argument("--partitions", type=int, default=4)
    bench.add_argument("--acceleration", type=float, default=None,
                       help="simulation/real time ratio "
                            "(default: as fast as possible)")
    bench.add_argument("--mode",
                       choices=("parallel", "sequential", "windowed"),
                       default="sequential")
    bench.add_argument(
        "--cache", metavar="SPEC", default="none",
        help="hot-path caches to enable: 'all', 'none' (default), or a "
             "comma list of plan,adjacency,memo")
    bench.add_argument(
        "--remote", metavar="HOST:PORT", default=None,
        help="drive a 'repro serve' instance over the wire instead of "
             "loading a SUT in-process (start the server with the same "
             "--persons/--seed)")
    bench.add_argument(
        "--digest", action="store_true",
        help="print the SUT's final-state digest after the run (the "
             "remote/in-process equivalence oracle)")
    bench.add_argument(
        "--shards", type=int, default=0,
        help="partition the store SUT across N worker processes "
             "behind the shard router (0 = in-process, the default)")
    _add_trace_flag(bench)

    explain = commands.add_parser(
        "explain", help="EXPLAIN the Figure 4 plan for Q9")
    explain.add_argument("--persons", type=int, default=300)
    explain.add_argument("--seed", type=int, default=42)

    curate = commands.add_parser(
        "curate", help="print curated parameters for a query")
    curate.add_argument("--persons", type=int, default=300)
    curate.add_argument("--seed", type=int, default=42)
    curate.add_argument("--query", type=int, default=9,
                        choices=range(1, 15), metavar="1-14")
    curate.add_argument("-k", type=int, default=10,
                        help="number of bindings")
    curate.add_argument("--uniform", action="store_true",
                        help="uniform baseline instead of curated")

    crosscheck = commands.add_parser(
        "crosscheck",
        help="validate the two SUTs against each other")
    crosscheck.add_argument("--persons", type=int, default=200)
    crosscheck.add_argument("--seed", type=int, default=42)
    crosscheck.add_argument("-k", type=int, default=4,
                            help="bindings per query template")
    crosscheck.add_argument(
        "--updates", action="store_true",
        help="update-aware differential mode: replay the update "
             "stream on both SUTs with interleaved reads and state "
             "checkpoints")
    crosscheck.add_argument("--batch", type=int, default=100,
                            help="--updates: updates per batch")
    crosscheck.add_argument(
        "--replay-out", metavar="PATH", default=None,
        help="--updates: write the replay bundle of the first "
             "mismatch here")
    crosscheck.add_argument(
        "--shards", type=int, default=0,
        help="with --updates: check the single-process store against "
             "the N-shard multi-process store instead of the engine "
             "(digest equality proves shard placement loses nothing)")

    chaos = commands.add_parser(
        "chaos",
        help="run the update workload under injected faults and "
             "assert convergence to the fault-free state digest")
    chaos.add_argument("--persons", type=int, default=60)
    chaos.add_argument("--seed", type=int, default=11,
                       help="datagen seed")
    chaos.add_argument("--plan-seed", type=int, default=0,
                       help="fault-plan seed (same (seed, plan) → "
                            "identical injections and retry counts)")
    chaos.add_argument("--sut", choices=("store", "engine", "both"),
                       default="both")
    chaos.add_argument("--partitions", type=int, default=4)
    chaos.add_argument("--abort-rate", type=float, default=0.05,
                       help="fraction of ops hit by a transient abort")
    chaos.add_argument("--abort-attempts", type=int, default=1,
                       help="failing attempts per injected abort")
    chaos.add_argument("--latency-rate", type=float, default=0.02,
                       help="fraction of ops hit by a latency spike")
    chaos.add_argument("--latency-ms", type=float, default=2.0,
                       help="injected latency spike duration")
    chaos.add_argument("--hang-rate", type=float, default=0.0,
                       help="fraction of ops that stall then abort")
    chaos.add_argument("--hang-ms", type=float, default=100.0,
                       help="injected hang duration")
    chaos.add_argument("--fatal-rate", type=float, default=0.0,
                       help="fraction of ops raising a fatal SUT error "
                            "(digest will diverge unless 0)")
    chaos.add_argument("--store-conflicts", type=float, default=0.0,
                       help="store SUT only: fraction of commits "
                            "raising a genuine WriteConflictError")
    chaos.add_argument("--max-retries", type=int, default=8)
    chaos.add_argument("--degrade", action="store_true",
                       help="skip ops that exhaust retries instead of "
                            "failing the run (graceful degradation)")
    chaos.add_argument("--attempt-timeout", type=float, default=None,
                       help="per-attempt watchdog budget in seconds")
    chaos.add_argument(
        "--remote", metavar="HOST:PORT", default=None,
        help="soak a 'repro serve' instance over the wire: faults "
             "perturb the client side, the clean digest is computed "
             "locally, the final digest is fetched from the server "
             "(requires --sut store or engine matching the server, "
             "and --store-conflicts 0)")
    chaos.add_argument(
        "--shards", type=int, default=0,
        help="soak the N-shard multi-process store (requires --sut "
             "store); the clean digest stays single-process")
    chaos.add_argument("--shard-abort-rate", type=float, default=0.0,
                       help="--shards: fraction of worker applies "
                            "aborted before any state change")
    chaos.add_argument("--shard-delay-rate", type=float, default=0.0,
                       help="--shards: fraction of worker applies "
                            "delayed past the router timeout")
    chaos.add_argument("--shard-delay-ms", type=float, default=50.0,
                       help="--shards: injected worker delay duration")
    chaos.add_argument("--shard-timeout", type=float, default=30.0,
                       help="--shards: router RPC timeout in seconds")
    chaos.add_argument("--shard-kill-rate", type=float, default=0.0,
                       help="--shards: fraction of worker writes that "
                            "kill -9 the worker (half before anything "
                            "durable, half after WAL+apply but before "
                            "the ack); requires a WAL dir (a tempdir "
                            "is used when --shard-wal-dir is omitted)")
    chaos.add_argument("--shard-kill-after-prepare", type=float,
                       default=0.0,
                       help="--shards: fraction of 2PC prepares that "
                            "ack and then kill the worker — the "
                            "in-doubt window the coordinator log must "
                            "resolve")
    chaos.add_argument("--shard-torn-wal-rate", type=float, default=0.0,
                       help="--shards: fraction of worker writes that "
                            "die mid-WAL-append, leaving a torn "
                            "trailing record recovery must skip")
    chaos.add_argument("--shard-wal-dir", default=None,
                       help="--shards: directory for per-shard WALs + "
                            "the 2PC coordinator log; arms supervised "
                            "worker recovery")
    chaos.add_argument("--shard-max-restarts", type=int, default=64,
                       help="--shards: supervised worker respawn "
                            "budget before a dead shard degrades to "
                            "fatal (0 disables recovery — the canary "
                            "mode)")
    _add_trace_flag(chaos)

    serve = commands.add_parser(
        "serve",
        help="bulk-load a SUT and serve it over the wire protocol")
    serve.add_argument("--persons", type=int, default=200)
    serve.add_argument("--seed", type=int, default=42)
    serve.add_argument("--sut", choices=("store", "engine"),
                       default="store")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=0,
                       help="0 picks an ephemeral port (printed on "
                            "startup)")
    serve.add_argument("--workers", type=int, default=4,
                       help="worker threads executing operations")
    serve.add_argument("--queue-size", type=int, default=64,
                       help="bounded request queue; overflow triggers "
                            "busy rejections with a retry hint")
    serve.add_argument("--retry-after", type=float, default=0.05,
                       help="retry hint (seconds) sent with busy "
                            "rejections")
    serve.add_argument(
        "--max-estimated-rows", type=float, default=None,
        help="admission-control ceiling on a complex read's estimated "
             "traversal cardinality (default: no ceiling)")
    serve.add_argument(
        "--shards", type=int, default=0,
        help="serve the N-shard multi-process store (requires --sut "
             "store); clients drive it over the wire unchanged")
    serve.add_argument(
        "--shard-wal-dir", default=None,
        help="--shards: directory for per-shard WALs + the 2PC "
             "coordinator log; arms supervised worker crash recovery")
    serve.add_argument(
        "--drain-timeout", type=float, default=5.0,
        help="SIGTERM grace: stop accepting, finish in-flight "
             "requests (and queued duplicates) for up to this many "
             "seconds, then close")
    _add_trace_flag(serve)
    return parser


def _add_trace_flag(subparser) -> None:
    subparser.add_argument(
        "--trace", metavar="PATH", default=None,
        help="enable telemetry and write a trace to PATH on exit "
             "(Chrome trace-event JSON for about:tracing/Perfetto, or "
             "JSON-lines spans if PATH ends in .jsonl)")


class _TraceSession:
    """Enables telemetry for one command, exports on close."""

    def __init__(self, path: str | None) -> None:
        self.path = path
        if path:
            # Fail before the (possibly long) run, not at export time.
            parent = os.path.dirname(os.path.abspath(path))
            if not os.path.isdir(parent):
                raise SystemExit(
                    f"--trace: directory does not exist: {parent}")
            telemetry.enable(fresh_registry=True)

    def finish(self) -> None:
        if not self.path:
            return
        tracer = telemetry.disable()
        if str(self.path).endswith(".jsonl"):
            written = telemetry.write_spans_jsonl(tracer, self.path)
            kind = "JSON-lines span log"
        else:
            written = telemetry.write_chrome_trace(tracer, self.path)
            kind = "Chrome trace (load in about:tracing or ui.perfetto.dev)"
        print()
        print(telemetry.render_span_summary(tracer))
        breakdown = telemetry.wait_time_breakdown(tracer)
        if breakdown:
            print()
            print(telemetry.render_wait_breakdown(tracer))
        registry = telemetry.get_registry()
        if len(registry):
            print()
            print(telemetry.render_metrics(registry))
        print()
        print(f"trace written: {self.path} — {kind}, "
              f"{written} spans")


def _cmd_generate(args) -> int:
    parallel = ParallelConfig(jobs=args.jobs)
    if args.scale_factor is not None:
        config = DatagenConfig.for_scale_factor(
            args.scale_factor, seed=args.seed,
            event_driven_posts=not args.no_events, parallel=parallel)
    else:
        config = DatagenConfig(num_persons=args.persons, seed=args.seed,
                               event_driven_posts=not args.no_events,
                               parallel=parallel)
    print(f"generating {config.num_persons} persons "
          f"(≈ SF {config.scale_factor:.4f}, seed {config.seed}, "
          f"jobs {args.jobs}) ...")
    trace = _TraceSession(args.trace)
    network = generate(config)
    for name, value in DatasetStatistics.of(network).as_row().items():
        print(f"  {name:<10} {value}")
    report = validate_network(network)
    print(f"integrity: {'clean' if report.ok else 'VIOLATIONS'} "
          f"({report.checked} checks)")
    if args.out:
        write_csv(network, args.out)
        print(f"CSV export written to {args.out}")
    trace.finish()
    return 0 if report.ok else 1


def _cmd_validate(args) -> int:
    if args.canary_faults:
        return _cmd_canary_faults(args)
    if args.create or args.check:
        return _cmd_validate_golden(args)
    if args.directory is None:
        raise SystemExit(
            "validate: pass a CSV directory, or --create/--check "
            "for golden-dataset mode")
    network = read_csv(args.directory)
    report = validate_network(network)
    print(f"entities checked: {report.checked}")
    if report.ok:
        print("integrity: clean")
        return 0
    print(f"integrity: {len(report.violations)} violations")
    for violation in report.violations[:20]:
        print(f"  {violation}")
    return 1


def _cmd_validate_golden(args) -> int:
    from .validation import check_golden, create_golden, \
        render_golden_check
    from .validation.canary import canary_bug

    if args.create:
        records = create_golden(
            args.create, persons=args.persons, seed=args.seed,
            bindings_per_query=args.k, batch_size=args.batch)
        print(f"golden dataset written: {args.create} "
              f"({records} records, persons={args.persons}, "
              f"seed={args.seed})")
        if not args.check:
            return 0

    suts = ("store", "engine") if args.sut == "both" else (args.sut,)

    def run_checks() -> tuple[bool, list]:
        all_ok = True
        reports = []
        for sut_name in suts:
            report = check_golden(args.check, sut_name, jobs=args.jobs,
                                  shards=args.shards)
            reports.append(report)
            print(render_golden_check(report))
            all_ok = all_ok and report.ok
        return all_ok, reports

    if args.canary:
        target = "engine" if args.sut == "both" else args.sut
        if target == "sharded":
            print("canary: seeding a shard-router bug (shard 0 "
                  "dropped from every scatter-gather) — the check "
                  "below MUST fail")
        else:
            print(f"canary: seeding a Q2/S4 result bug into the "
                  f"{target} SUT — the check below MUST fail")
        with canary_bug(target):
            ok, reports = run_checks()
        if ok:
            print("CANARY NOT DETECTED — the validation harness "
                  "failed to catch a seeded query bug")
            return 1
        caught = next(r for r in reports if not r.ok)
        detail = f"{len(caught.mismatches)} mismatches"
        if caught.shrunk is not None:
            detail += (f", counterexample shrunk to "
                       f"{caught.shrunk.shrunk_updates} updates in "
                       f"{caught.shrunk.probes} probes")
        print(f"canary detected ({detail}) — harness is live")
        return 0

    ok, reports = run_checks()
    if args.replay_out:
        bundle = next(
            (r.shrunk.bundle if r.shrunk is not None else r.bundle
             for r in reports if r.bundle is not None), None)
        if bundle is not None:
            bundle.save(args.replay_out)
            print(f"replay bundle written: {args.replay_out}")
    return 0 if ok else 1


def _cmd_canary_faults(args) -> int:
    """``validate --check FILE --canary-faults``: the chaos canary.

    Anchors the network on the golden header's (persons, seed) so the
    canary exercises the same configuration CI validates, then runs the
    chaos soak with retry classification disabled — which MUST fail.
    """
    import json

    from .datagen.update_stream import split_network
    from .faults import FaultPlan
    from .validation import GOLDEN_FORMAT, chaos_canary, render_chaos

    if not args.check:
        print("--canary-faults requires --check PATH "
              "(the golden header pins the configuration)",
              file=sys.stderr)
        return 2
    with open(args.check, encoding="utf-8") as handle:
        header = json.loads(handle.readline())
    if header.get("format") != GOLDEN_FORMAT:
        raise SystemExit(
            f"{args.check}: not a {GOLDEN_FORMAT} golden dataset")
    sut = "store" if args.sut == "both" else args.sut
    print(f"chaos canary: injecting transient aborts into the {sut} "
          f"SUT with retry classification DISABLED — the soak below "
          f"MUST fail")
    network = generate(DatagenConfig(num_persons=header["persons"],
                                     seed=header["seed"]))
    split = split_network(network)
    plan = FaultPlan.uniform(abort=0.10)
    caught, report = chaos_canary(split, sut, plan)
    print(render_chaos(report))
    if not caught:
        print("CHAOS CANARY NOT DETECTED — either the fault injector "
              "no longer fires or the soak no longer notices a driver "
              "that cannot retry")
        return 1
    print(f"chaos canary detected ({report.injected_total} faults "
          f"injected, unprotected run failed) — chaos harness is live")
    return 0


def _cmd_benchmark(args) -> int:
    from .cache import CacheConfig
    from .core import BenchmarkConfig, InteractiveBenchmark, \
        render_report
    from .driver.clock import AS_FAST_AS_POSSIBLE
    from .driver.modes import ExecutionMode

    try:
        cache = CacheConfig.from_spec(args.cache)
    except ValueError as exc:
        raise SystemExit(f"--cache: {exc}")
    if args.remote and args.cache != "none":
        raise SystemExit(
            "--remote: client-side SUT caches do not apply; the server "
            "owns the state (drop --cache)")
    if args.shards:
        if args.remote:
            raise SystemExit(
                "--shards loads the sharded SUT in-process; start the "
                "server with --shards instead of combining it with "
                "--remote")
        if args.sut != "store":
            raise SystemExit(
                "--shards partitions the graph store; use --sut store")
        if args.cache != "none":
            raise SystemExit(
                "--shards: in-process SUT caches do not apply; worker "
                "processes own the state (drop --cache)")
    config = BenchmarkConfig(
        num_persons=args.persons,
        seed=args.seed,
        sut=args.sut,
        num_partitions=args.partitions,
        mode=ExecutionMode(args.mode),
        acceleration=(args.acceleration if args.acceleration is not None
                      else AS_FAST_AS_POSSIBLE),
        cache=cache,
        remote=args.remote,
        shards=args.shards,
    )
    benchmark = InteractiveBenchmark(config)
    # Preparation (datagen, bulk load, curation) happens untraced so the
    # trace covers the measured run only.
    benchmark.prepare()
    trace = _TraceSession(args.trace)
    report = benchmark.run()
    print(render_report(report))
    if args.digest:
        print(f"final-state digest: {benchmark.final_state_digest()}")
    # Shard workers drain their span buffers into the router's
    # telemetry on close, so close before exporting the trace.
    benchmark.close()
    trace.finish()
    return 0


def _cmd_explain(args) -> int:
    from .curation import ParameterCurator
    from .engine import snb_queries
    from .engine.catalog import load_catalog
    from .engine.explain import explain_pipeline

    network = generate(DatagenConfig(num_persons=args.persons,
                                     seed=args.seed))
    catalog = load_catalog(network)
    params = ParameterCurator(network, seed=args.seed) \
        .curate(3).by_query[9][0]
    pipeline = snb_queries.q9_pipeline(catalog, params)
    pipeline.execute()
    print(explain_pipeline(pipeline, show_actuals=True))
    return 0


def _cmd_curate(args) -> int:
    from .curation import ParameterCurator

    network = generate(DatagenConfig(num_persons=args.persons,
                                     seed=args.seed))
    curator = ParameterCurator(network, seed=args.seed)
    params = curator.curate(args.k, uniform=args.uniform)
    label = "uniform" if args.uniform else "curated"
    print(f"{label} bindings for Q{args.query}:")
    for binding in params.by_query[args.query]:
        print(f"  {binding}")
    return 0


def _cmd_crosscheck(args) -> int:
    from .core import cross_validate, render_validation

    if args.shards and not args.updates:
        raise SystemExit(
            "--shards: the sharded crosscheck is the update-aware "
            "differential mode; add --updates")
    network = generate(DatagenConfig(num_persons=args.persons,
                                     seed=args.seed))
    if args.updates:
        from .curation import ParameterCurator
        from .datagen.update_stream import split_network
        from .validation import render_differential, run_differential

        split = split_network(network)
        params = ParameterCurator(split.bulk, seed=args.seed) \
            .curate(args.k)
        right_factory = None
        if args.shards:
            from .shard import ShardedStoreSUT

            def right_factory(bulk):
                return ShardedStoreSUT.for_network(bulk, args.shards)

            print(f"crosscheck: single-process store vs "
                  f"{args.shards}-shard multi-process store")
        report, bundle = run_differential(
            split, params, persons=args.persons, seed=args.seed,
            batch_size=args.batch, right_factory=right_factory)
        print(render_differential(report))
        if bundle is not None and args.replay_out:
            bundle.save(args.replay_out)
            print(f"replay bundle written: {args.replay_out}")
        return 0 if report.ok else 1
    report = cross_validate(network, bindings_per_query=args.k,
                            seed=args.seed)
    print(render_validation(report))
    return 0 if report.ok else 1


def _cmd_chaos(args) -> int:
    from .datagen.update_stream import split_network
    from .driver.resilience import DegradePolicy, RetryPolicy
    from .faults import FaultPlan
    from .validation import render_chaos, run_chaos

    plan = FaultPlan.uniform(
        abort=args.abort_rate, latency=args.latency_rate,
        hang=args.hang_rate, fatal=args.fatal_rate,
        abort_attempts=args.abort_attempts,
        latency_seconds=args.latency_ms / 1000.0,
        hang_seconds=args.hang_ms / 1000.0)
    policy = RetryPolicy(
        max_retries=args.max_retries, base_backoff=0.0005,
        max_backoff=0.05, attempt_timeout=args.attempt_timeout,
        on_exhaustion=(DegradePolicy.DEGRADE if args.degrade
                       else DegradePolicy.FAIL_FAST))
    print(f"chaos soak: {args.persons} persons (seed {args.seed}), "
          f"plan seed {args.plan_seed}, abort={args.abort_rate} "
          f"latency={args.latency_rate} hang={args.hang_rate} "
          f"fatal={args.fatal_rate} conflicts={args.store_conflicts}")
    if args.remote:
        if args.sut == "both":
            raise SystemExit(
                "--remote: pass --sut store or --sut engine matching "
                "the server (the clean digest is computed locally)")
        if args.store_conflicts:
            raise SystemExit(
                "--remote: store-level conflict injection is "
                "in-process only")
    shard_faults = None
    if args.shards:
        if args.sut not in ("store", "both"):
            raise SystemExit(
                "--shards partitions the graph store; use --sut store")
        if args.remote:
            raise SystemExit(
                "--shards spawns the sharded SUT in-process; start "
                "the server with --shards instead")
        if args.store_conflicts:
            raise SystemExit(
                "--shards: use --shard-abort-rate/--shard-delay-rate "
                "to fault the workers instead of --store-conflicts")
        args.sut = "store"
        if args.shard_abort_rate or args.shard_delay_rate \
                or args.shard_kill_rate \
                or args.shard_kill_after_prepare \
                or args.shard_torn_wal_rate:
            from .shard import ShardFaultPlan

            shard_faults = ShardFaultPlan(
                abort_rate=args.shard_abort_rate,
                delay_rate=args.shard_delay_rate,
                delay_seconds=args.shard_delay_ms / 1000.0,
                kill_rate=args.shard_kill_rate,
                kill_after_prepare=args.shard_kill_after_prepare,
                torn_wal_rate=args.shard_torn_wal_rate,
                seed=args.plan_seed)
    shard_wal_dir = args.shard_wal_dir
    wal_tempdir = None
    if args.shards and shard_wal_dir is None and shard_faults is not None \
            and shard_faults.has_crash_faults:
        import tempfile

        wal_tempdir = tempfile.TemporaryDirectory(prefix="repro-shard-wal-")
        shard_wal_dir = wal_tempdir.name
        print(f"crash faults armed, no --shard-wal-dir given: "
              f"using {shard_wal_dir}")
    network = generate(DatagenConfig(num_persons=args.persons,
                                     seed=args.seed))
    split = split_network(network)
    trace = _TraceSession(args.trace)
    suts = ("store", "engine") if args.sut == "both" else (args.sut,)
    all_ok = True
    try:
        for sut_name in suts:
            report = run_chaos(
                split, sut_name, plan, seed=args.plan_seed, policy=policy,
                num_partitions=args.partitions,
                conflict_rate=(args.store_conflicts
                               if sut_name == "store" else 0.0),
                remote=args.remote, shards=args.shards,
                shard_faults=shard_faults,
                shard_timeout=args.shard_timeout,
                shard_wal_dir=shard_wal_dir,
                shard_max_restarts=args.shard_max_restarts)
            print(render_chaos(report))
            all_ok = all_ok and report.ok
    finally:
        if wal_tempdir is not None:
            wal_tempdir.cleanup()
    trace.finish()
    return 0 if all_ok else 1


def _cmd_serve(args) -> int:
    from .datagen.update_stream import split_network
    from .net import ReproServer, ServerConfig
    from .validation.snapshot import snapshot_catalog, snapshot_digest, \
        snapshot_store

    if args.shards and args.sut != "store":
        raise SystemExit(
            "--shards partitions the graph store; use --sut store")
    shard_note = f", {args.shards} shards" if args.shards else ""
    print(f"loading {args.sut} SUT: {args.persons} persons "
          f"(seed {args.seed}{shard_note}) ...")
    network = generate(DatagenConfig(num_persons=args.persons,
                                     seed=args.seed))
    split = split_network(network)
    if args.shards:
        from .shard import ShardedStoreSUT

        sut = ShardedStoreSUT.for_network(split.bulk, args.shards,
                                          wal_dir=args.shard_wal_dir)
        digest_fn = sut.digest
    elif args.sut == "store":
        from .core.sut import StoreSUT

        sut = StoreSUT.for_network(split.bulk)

        def digest_fn() -> str:
            return snapshot_digest(snapshot_store(sut.store))
    else:
        from .core.sut import EngineSUT

        sut = EngineSUT.for_network(split.bulk)

        def digest_fn() -> str:
            return snapshot_digest(snapshot_catalog(sut.catalog))

    config = ServerConfig(
        host=args.host, port=args.port, workers=args.workers,
        queue_size=args.queue_size, retry_after=args.retry_after,
        # The engine's catalog has no internal concurrency control.
        serialize=(args.sut == "engine"),
        max_estimated_rows=args.max_estimated_rows,
        drain_timeout=args.drain_timeout)
    trace = _TraceSession(args.trace)
    server = ReproServer(sut, config, digest_fn=digest_fn)
    host, port = server.start()

    # SIGTERM = graceful drain: stop accepting, let in-flight (and
    # queued duplicate) requests finish, then close.  A pipelined
    # client mid-batch gets its answers instead of a reset socket.
    import signal

    def _drain_handler(signum, frame):
        print(f"\nSIGTERM: draining (timeout "
              f"{args.drain_timeout:.1f}s)")
        completed = server.drain(args.drain_timeout)
        print("drain " + ("complete" if completed else "timed out"))

    signal.signal(signal.SIGTERM, _drain_handler)
    admission = "off" if args.max_estimated_rows is None else \
        f"max {args.max_estimated_rows:.0f} estimated rows " \
        f"(avg degree {server.admission.average_degree:.1f})"
    print(f"serving {sut.name} on {host}:{port} "
          f"({args.workers} workers, queue {args.queue_size}, "
          f"admission {admission})")
    print("drive it with: repro benchmark "
          f"--persons {args.persons} --seed {args.seed} "
          f"--remote {host}:{port}")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("\nshutting down")
        server.shutdown()
    stats = server.stats()
    print("served: " + ", ".join(f"{k}={v}"
                                 for k, v in sorted(stats.items()) if v))
    if args.shards:
        sut.close()  # stop the shard workers (drains spans first)
    trace.finish()
    return 0


_COMMANDS = {
    "generate": _cmd_generate,
    "validate": _cmd_validate,
    "benchmark": _cmd_benchmark,
    "explain": _cmd_explain,
    "curate": _cmd_curate,
    "crosscheck": _cmd_crosscheck,
    "chaos": _cmd_chaos,
    "serve": _cmd_serve,
}


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
